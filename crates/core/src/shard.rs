//! Sharded parallel execution of the auction: per-shard bid batches merged
//! through the unchanged auctioneer logic, with permanent retirement of
//! priced-out requests.
//!
//! [`crate::engine::SyncAuction`] is a Gauss–Seidel sweep: one thread walks
//! the unassigned requests in index order and every bid updates prices
//! immediately. That is the simplest *sequential* schedule, but it cannot
//! use more than one core and it re-scans every unassigned request each
//! round even when nothing they can see has changed. [`ShardedAuction`]
//! runs the *same* bidder and auctioneer logic
//! ([`crate::bidder::decide_bid`], [`crate::auctioneer::Auctioneer`]) in a
//! schedule built for 10³–10⁴-request slots:
//!
//! 1. **Shard bidding.** Each round partitions the active requests into
//!    `shards` contiguous slices. One slice at a time, every request in the
//!    slice computes its bid against a read-only snapshot of the current
//!    prices — a pure function, so when the machine has cores to spare the
//!    slice fans out across `min(shards, cores)` worker threads (with one
//!    core it runs on the calling thread — identical results either way,
//!    see *Determinism* below).
//! 2. **Batched merge per shard.** A slice's bids are applied through the
//!    unchanged [`Auctioneer`](crate::auctioneer::Auctioneer) state machine
//!    in one deterministic pass, sorted by descending amount (conflicts on
//!    the same provider resolve toward the highest bid; its price then
//!    rejects the stale lower bids, exactly as a real asynchronous
//!    auctioneer would). Because slices merge *in order*, later shards of
//!    the round bid against fresh prices — a block-Gauss–Seidel schedule —
//!    and a bounded number of same-round retry passes lets evicted and
//!    rejected requests re-decide immediately instead of waiting a full
//!    round, so batching does not inflate the bid-round count.
//! 3. **Retirement.** Prices are monotone within a run, so a request whose
//!    best net utility has gone negative can never become profitable again
//!    — it is dropped from all future rounds. The synchronous engine keeps
//!    re-scanning priced-out requests until global quiescence; on contended
//!    slots (where a large share of demand ends up priced out, e.g. a flash
//!    crowd over scarce seeds) this pruning is what lets the sharded engine
//!    beat the Gauss–Seidel sweep even on a single core, on top of the
//!    multi-core headroom from (1). `BENCH_parallel.json` records the
//!    measured per-slot latency wins.
//!
//! # Optimality
//!
//! The Theorem 1 argument is execution-order-free: it only needs bids to be
//! validated against the auctioneer's *current* price (stale bids are
//! rejected and retried, as in the message-level engine) and prices to rise
//! monotonically. Both hold here, so a converged run satisfies the same
//! `n·ε` certificate as the synchronous engine — exact optimality at ε = 0
//! on tie-free instances, welfare within `n·ε` for ε > 0. Debug builds
//! re-verify the certificate with [`crate::verify_optimality`] after every
//! converged ε > 0 run. Warm starts compose: [`ShardedAuction::run_warm`]
//! reuses the synchronous engine's price clamping and CS 1 repair loop, so
//! slot-to-slot carried prices keep the certificate too.
//!
//! # Determinism
//!
//! A slice's bids depend only on the price snapshot at its merge boundary
//! (worklists are partitioned by *shard count*, never by thread count), and
//! each merge applies them in a total order (amount descending, request
//! index ascending) — so the outcome is a pure function of the instance,
//! the configuration, and the shard count. It does *not* depend on the
//! number of worker threads, the machine's core count, or thread
//! scheduling: `ShardCount::Fixed(8)` produces bit-identical outcomes on a
//! laptop and a 64-core server. Different shard counts are different (all
//! certified) merge batchings of the same auction, `1` being exactly the
//! sequential engine.
//!
//! # Examples
//!
//! ```
//! use p2p_core::{AuctionConfig, ShardCount, ShardedAuction, SyncAuction, WelfareInstance};
//! use p2p_types::{ChunkId, Cost, PeerId, RequestId, Valuation, VideoId};
//!
//! let mut b = WelfareInstance::builder();
//! let u = b.add_provider(PeerId::new(9), 1);
//! for d in 0..3 {
//!     let r = b.add_request(RequestId::new(PeerId::new(d), ChunkId::new(VideoId::new(0), 0)));
//!     b.add_edge(r, u, Valuation::new(5.0 - f64::from(d)), Cost::new(1.0)).unwrap();
//! }
//! let inst = b.build().unwrap();
//!
//! let sharded = ShardedAuction::new(AuctionConfig::paper(), ShardCount::Fixed(4));
//! let out = sharded.run(&inst).unwrap();
//! let sync = SyncAuction::new(AuctionConfig::paper()).run(&inst).unwrap();
//! assert_eq!(out.assignment.welfare(&inst), sync.assignment.welfare(&inst));
//! ```

use crate::auctioneer::{Auctioneer, BidOutcome};
use crate::bidder::{decide_bid, BidDecision, EdgeView};
use crate::engine::{edge_views, final_prices, run_warm_with, AuctionConfig, AuctionOutcome};
use crate::engine::{PriceChange, SyncAuction};
use crate::instance::WelfareInstance;
use crate::solution::{Assignment, DualSolution};
use p2p_metrics::{AuctionProbe, NoProbe};
use p2p_types::P2pError;
use serde::{Deserialize, Serialize};
use std::sync::mpsc;
use std::sync::Arc;

/// How many shards a [`ShardedAuction`] partitions its bidding across.
///
/// The shard count selects the *algorithm* (1 = the sequential Gauss–Seidel
/// sweep, ≥ 2 = batched per-shard merges); the number of OS worker threads
/// actually used is `min(shards, available cores)`, so a sharded
/// configuration never oversubscribes a small machine and a fixed `shards`
/// produces identical results everywhere.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum ShardCount {
    /// One shard per available core (what a deployment wants).
    #[default]
    Auto,
    /// Exactly `n` shards (reproducible benchmarking and tests).
    Fixed(usize),
}

impl ShardCount {
    /// The CLI/spec name of this count (`auto` or the number).
    pub fn name(self) -> String {
        match self {
            ShardCount::Auto => "auto".to_string(),
            ShardCount::Fixed(n) => n.to_string(),
        }
    }

    /// Parses a CLI/spec value: `auto` or a positive integer.
    ///
    /// # Errors
    ///
    /// Returns [`P2pError::InvalidConfig`] for anything else (including 0).
    pub fn from_name(name: &str) -> Result<Self, P2pError> {
        if name == "auto" {
            return Ok(ShardCount::Auto);
        }
        match name.parse::<usize>() {
            Ok(n) if n > 0 => Ok(ShardCount::Fixed(n)),
            _ => Err(P2pError::invalid_config(
                "shards",
                format!("expected `auto` or a positive integer, got `{name}`"),
            )),
        }
    }

    /// Validates the count (`Fixed(0)` is rejected).
    ///
    /// # Errors
    ///
    /// Returns [`P2pError::InvalidConfig`] for `Fixed(0)`.
    pub fn validate(self) -> Result<(), P2pError> {
        match self {
            ShardCount::Fixed(0) => {
                Err(P2pError::invalid_config("shards", "must be positive (or `auto`)"))
            }
            _ => Ok(()),
        }
    }

    /// The ceiling `Auto` may resolve to: the pinnable core count of
    /// [`available_cores`]. Use [`ShardCount::resolve_for`] to pick the
    /// count for an actual slot.
    pub fn resolve(self) -> usize {
        match self {
            ShardCount::Auto => available_cores(),
            ShardCount::Fixed(n) => n.max(1),
        }
    }

    /// Requests per shard below which extra shards stop paying for their
    /// merge boundaries: `Auto` never slices finer than this.
    pub const AUTO_REQUESTS_PER_SHARD: usize = 256;

    /// The concrete shard count for a slot with `requests` active requests.
    ///
    /// `Fixed(n)` is always `n`. `Auto` adapts to the live slot size (the
    /// ROADMAP's adaptive-shard follow-on): small slots run the sequential
    /// Gauss–Seidel sweep (`1` — batching overhead would dominate), and the
    /// count grows with the slot, one shard per
    /// [`ShardCount::AUTO_REQUESTS_PER_SHARD`] requests, capped at the
    /// machine's cores — so a 10³–10⁴-request flash crowd lands at ~cores.
    /// The result depends only on the request count and the machine, never
    /// on thread scheduling, so `Auto` outcomes stay reproducible per
    /// machine.
    pub fn resolve_for(self, requests: usize) -> usize {
        match self {
            ShardCount::Fixed(n) => n.max(1),
            ShardCount::Auto => {
                let shards = requests / Self::AUTO_REQUESTS_PER_SHARD;
                if shards <= 1 {
                    1
                } else {
                    shards.min(Self::Auto.resolve())
                }
            }
        }
    }
}

/// The core count every shard resolution and worker fan-out in the
/// workspace consults — the **single** entry point (via
/// [`ShardCount::resolve_for`] and the engines' worker sizing) where
/// `available_parallelism` is read, so a shard-count decision can never
/// observe a different machine than the pool it fans out to.
///
/// Pinnable for reproducible bench and CI runs: set `P2P_CORES` to a
/// positive integer and every engine, scheduler and bench binary resolves
/// against that count instead of the machine's. Unset (or invalid), it
/// falls back to [`std::thread::available_parallelism`] (1 if unknown).
pub fn available_cores() -> usize {
    match std::env::var("P2P_CORES") {
        Ok(v) => match v.trim().parse::<usize>() {
            Ok(n) if n >= 1 => n,
            _ => machine_cores(),
        },
        Err(_) => machine_cores(),
    }
}

/// The machine's own core count (the `P2P_CORES`-less fallback).
fn machine_cores() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// One bid computed by a shard against the round's price snapshot.
#[derive(Debug, Clone, Copy)]
struct ShardBid {
    amount: f64,
    request: usize,
    edge: usize,
    provider: usize,
}

/// A round's compute phase: fills a [`SliceResult`] for a worklist against
/// a price snapshot (sequential or fanned out to worker threads).
type RoundExec<'a> = dyn FnMut(&[usize], &[f64], &mut SliceResult) + 'a;

/// What one shard computed for its slice of the round's worklist.
#[derive(Debug, Default)]
struct SliceResult {
    bids: Vec<ShardBid>,
    /// Requests whose best net utility went negative (or that have no
    /// candidates): permanently retired, since prices only rise.
    retired: Vec<usize>,
}

/// The sharded parallel auction engine. See the [module docs](self).
#[derive(Debug, Clone, Default)]
pub struct ShardedAuction {
    config: AuctionConfig,
    shards: ShardCount,
    /// Test/bench override for the OS worker-thread count (normally
    /// `min(shards, cores)`).
    workers: Option<usize>,
}

impl ShardedAuction {
    /// Creates an engine with the given auction configuration and shard
    /// count.
    pub fn new(config: AuctionConfig, shards: ShardCount) -> Self {
        ShardedAuction { config, shards, workers: None }
    }

    /// The engine's auction configuration.
    pub fn config(&self) -> &AuctionConfig {
        &self.config
    }

    /// The engine's shard count.
    pub fn shards(&self) -> ShardCount {
        self.shards
    }

    /// The effective shard count this engine would use for a slot with
    /// `requests` active requests — the single
    /// [`ShardCount::resolve_for`] resolution every engine shares, exposed
    /// so tests can pin nested/flat agreement.
    pub fn effective_shards(&self, requests: usize) -> usize {
        self.shards.resolve_for(requests)
    }

    /// Forces the OS worker-thread count regardless of the machine's core
    /// count (builder-style). Results are unaffected — this exists so tests
    /// and benches can exercise the threaded compute path on any machine.
    #[must_use]
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = Some(workers.max(1));
        self
    }

    /// Runs the auction to convergence on `instance`.
    ///
    /// With an effective shard count of 1 this delegates to
    /// [`SyncAuction::run`] (bit-identical to the sequential engine);
    /// otherwise it runs Jacobi rounds as described in the module docs.
    ///
    /// # Errors
    ///
    /// Returns [`P2pError::AuctionDiverged`] if quiescence is not reached
    /// within `max_rounds`.
    pub fn run(&self, instance: &WelfareInstance) -> Result<AuctionOutcome, P2pError> {
        self.run_probed(instance, &mut NoProbe)
    }

    /// [`ShardedAuction::run`] with an observation probe. The engine is
    /// generic over the probe, so `run` (which passes [`NoProbe`])
    /// monomorphizes to the uninstrumented loop — outcomes are
    /// bit-identical either way (property-tested).
    pub fn run_probed(
        &self,
        instance: &WelfareInstance,
        probe: &mut impl AuctionProbe,
    ) -> Result<AuctionOutcome, P2pError> {
        let shards = self.shards.resolve_for(instance.request_count());
        if shards <= 1 {
            return SyncAuction::new(self.config).run_probed(instance, probe);
        }
        let outcome = self.run_from(instance, None, self.config.epsilon, shards, probe)?;
        self.debug_verify(instance, &outcome);
        Ok(outcome)
    }

    /// Runs the auction warm-started from `prior_prices`, with exactly the
    /// price clamping and CS 1 repair-loop semantics of
    /// [`SyncAuction::run_warm`] (the two engines share the implementation),
    /// so slot-to-slot carried prices preserve the `n·ε` certificate.
    ///
    /// # Errors
    ///
    /// Returns [`P2pError::AuctionDiverged`] if any pass exceeds
    /// `max_rounds`.
    pub fn run_warm(
        &self,
        instance: &WelfareInstance,
        prior_prices: &[f64],
    ) -> Result<AuctionOutcome, P2pError> {
        self.run_warm_probed(instance, prior_prices, &mut NoProbe)
    }

    /// [`ShardedAuction::run_warm`] with an observation probe (every CS 1
    /// repair pass reports into the same probe).
    ///
    /// # Errors
    ///
    /// Returns [`P2pError::AuctionDiverged`] if any pass exceeds
    /// `max_rounds`.
    pub fn run_warm_probed(
        &self,
        instance: &WelfareInstance,
        prior_prices: &[f64],
        probe: &mut impl AuctionProbe,
    ) -> Result<AuctionOutcome, P2pError> {
        let shards = self.shards.resolve_for(instance.request_count());
        if shards <= 1 {
            return SyncAuction::new(self.config).run_warm_probed(instance, prior_prices, probe);
        }
        let eps = self.config.epsilon;
        let outcome = run_warm_with(instance, prior_prices, eps, |prices| {
            self.run_from(instance, prices, eps, shards, &mut *probe)
        })?;
        self.debug_verify(instance, &outcome);
        Ok(outcome)
    }

    /// Debug-build self-check: re-verify the Theorem 1 certificate after
    /// every converged run. Skipped at ε = 0, where the paper's abstain-on-
    /// ties rule legitimately leaves tied welfare on the table (same caveat
    /// as the synchronous engine).
    fn debug_verify(&self, instance: &WelfareInstance, outcome: &AuctionOutcome) {
        if cfg!(debug_assertions) && self.config.epsilon >= crate::bidder::MIN_INCREMENT {
            let tol = self.config.epsilon * (instance.request_count() as f64 + 1.0);
            let report = crate::verify::verify_optimality(
                instance,
                &outcome.assignment,
                &outcome.duals,
                tol,
            );
            debug_assert!(
                report.is_optimal(),
                "sharded auction lost its certificate: {:?}",
                report.violations
            );
        }
    }

    /// Core Jacobi engine: optional warm-start prices, explicit ε. Only
    /// called with an effective (slot-resolved) shard count ≥ 2.
    fn run_from<P: AuctionProbe>(
        &self,
        instance: &WelfareInstance,
        initial_prices: Option<&[f64]>,
        epsilon: f64,
        shards: usize,
        probe: &mut P,
    ) -> Result<AuctionOutcome, P2pError> {
        let shards = shards.max(2);
        let workers =
            self.workers.unwrap_or_else(|| shards.min(available_cores())).max(1).min(shards);
        let views = edge_views(instance);
        if workers <= 1 {
            // Single worker: compute each slice on the calling thread. The
            // outcome is identical to the threaded path because a slice's
            // bids are a pure function of (slice, snapshot) and the merge
            // sorts them into a total order.
            let mut exec = |slice: &[usize], prices: &[f64], out: &mut SliceResult| {
                compute_slice(&views, slice, prices, epsilon, out);
            };
            return self.rounds_loop(instance, initial_prices, shards, &mut exec, probe);
        }
        // Per-run worker threads: spawned lazily on the first slice large
        // enough to fan out (small runs never pay a spawn), parked on a
        // channel between slices, joined once at the end of the run by the
        // scope.
        std::thread::scope(|scope| {
            type Cmd = (usize, Vec<usize>, Arc<Vec<f64>>);
            let (res_tx, res_rx) = mpsc::channel::<(usize, SliceResult)>();
            let mut cmd_txs: Vec<mpsc::Sender<Cmd>> = Vec::new();
            let views = &views;
            let mut exec = |slice: &[usize], prices: &[f64], out: &mut SliceResult| {
                // Small slices are not worth a round-trip through the
                // workers; the threshold only affects wall-time, never the
                // result (bids are a pure function of the snapshot).
                if slice.len() < 2 * workers {
                    compute_slice(views, slice, prices, epsilon, out);
                    return;
                }
                if cmd_txs.is_empty() {
                    for _ in 0..workers {
                        let (tx, rx) = mpsc::channel::<Cmd>();
                        cmd_txs.push(tx);
                        let res_tx = res_tx.clone();
                        scope.spawn(move || {
                            while let Ok((idx, chunk, prices)) = rx.recv() {
                                let mut out = SliceResult::default();
                                compute_slice(views, &chunk, &prices, epsilon, &mut out);
                                if res_tx.send((idx, out)).is_err() {
                                    break;
                                }
                            }
                        });
                    }
                }
                let snapshot = Arc::new(prices.to_vec());
                let per = slice.len().div_ceil(workers).max(1);
                let mut active = 0usize;
                for (w, chunk) in slice.chunks(per).enumerate() {
                    // Unreachable send error: workers outlive the slice.
                    let _ = cmd_txs[w].send((w, chunk.to_vec(), snapshot.clone()));
                    active += 1;
                }
                // Reassemble in chunk order so the merge input — and with it
                // every outcome field, including the price trace of merges
                // whose sort is skipped — is independent of thread timing.
                let mut parts: Vec<Option<SliceResult>> = (0..active).map(|_| None).collect();
                for _ in 0..active {
                    let (idx, part) = res_rx.recv().expect("workers outlive the slice");
                    parts[idx] = Some(part);
                }
                for part in parts.into_iter().flatten() {
                    out.bids.extend_from_slice(&part.bids);
                    out.retired.extend_from_slice(&part.retired);
                }
            };
            self.rounds_loop(instance, initial_prices, shards, &mut exec, probe)
            // Dropping `cmd_txs` here ends the worker loops; the scope joins
            // them before returning.
        })
    }

    /// The round loop shared by the sequential and threaded compute paths:
    /// `exec` fills a [`SliceResult`] with one slice's bids (and retired
    /// requests) against the given price snapshot; this loop partitions
    /// each round's worklist into `shards` slices and merges them in order.
    fn rounds_loop<P: AuctionProbe>(
        &self,
        instance: &WelfareInstance,
        initial_prices: Option<&[f64]>,
        shards: usize,
        exec: &mut RoundExec<'_>,
        probe: &mut P,
    ) -> Result<AuctionOutcome, P2pError> {
        let request_count = instance.request_count();
        let mut auctioneers: Vec<Auctioneer> = instance
            .providers()
            .iter()
            .enumerate()
            .map(|(u, p)| {
                let warm = initial_prices
                    .and_then(|ps| ps.get(u).copied())
                    .filter(|w| w.is_finite() && *w >= 0.0)
                    .unwrap_or(0.0);
                if p.capacity.is_zero() {
                    Auctioneer::new(0)
                } else {
                    Auctioneer::with_price(p.capacity.chunks_per_slot(), warm)
                }
            })
            .collect();
        let mut eff_price: Vec<f64> = instance
            .providers()
            .iter()
            .enumerate()
            .map(|(u, p)| if p.capacity.is_zero() { f64::INFINITY } else { auctioneers[u].price() })
            .collect();
        let mut assigned: Vec<Option<usize>> = vec![None; request_count];
        let mut retired: Vec<bool> = vec![false; request_count];
        let mut worklist: Vec<usize> = (0..request_count).collect();
        // Slice-generation marks for the collision check (one generation
        // per merged batch, no clearing).
        let mut collision_mark: Vec<u64> = vec![0; instance.provider_count()];
        let mut rounds_mark: u64 = 1;
        let mut result = SliceResult::default();
        let mut trace = Vec::new();
        let mut rounds = 0u64;
        let mut bids_submitted = 0u64;

        loop {
            rounds += 1;
            if rounds > self.config.max_rounds {
                return Err(P2pError::AuctionDiverged { iterations: rounds - 1 });
            }
            let mut round_bids = 0u64;
            let mut round_conflicts = 0u64;
            let mut round_retired = 0u64;
            // The first round is the contended one: no prices exist yet, so
            // every request bids and conflicts concentrate there. Finer
            // batching in round 1 resolves them with fresh prices sooner
            // (still deterministic — the factor depends only on the round).
            let batches = if rounds == 1 { shards * 4 } else { shards };
            let chunk = worklist.len().div_ceil(batches).max(1);
            // Same-round retry passes: requests evicted or rejected by a
            // merge re-decide at the end of the round against the freshest
            // prices, so eviction chains resolve without waiting a full
            // round (the synchronous sweep gets the same effect for free
            // when the evictee's index lies after the sweep position). The
            // pass budget keeps `max_rounds` a real divergence guard:
            // leftover work simply lands in the next round's worklist.
            const MAX_RETRY_PASSES: u32 = 64;
            let mut retry_passes = 0u32;
            let mut spill: Vec<usize> = Vec::new();
            let mut retry: Vec<usize> = Vec::new();
            let mut slices = worklist.chunks(chunk);
            loop {
                let slice: &[usize] = match slices.next() {
                    Some(s) => s,
                    None if !spill.is_empty() && retry_passes < MAX_RETRY_PASSES => {
                        retry_passes += 1;
                        retry.clear();
                        retry.extend(
                            spill.drain(..).filter(|&r| assigned[r].is_none() && !retired[r]),
                        );
                        if retry.is_empty() {
                            break;
                        }
                        &retry
                    }
                    None => break,
                };
                result.bids.clear();
                result.retired.clear();
                exec(slice, &eff_price, &mut result);
                for &r in &result.retired {
                    retired[r] = true;
                }
                round_retired += result.retired.len() as u64;
                if result.bids.is_empty() {
                    continue;
                }
                round_bids += result.bids.len() as u64;
                // Batched merge: highest bid first; ties (impossible on the
                // same request) break toward the lower request index, making
                // the order total and the outcome deterministic. Later
                // slices of this round then bid against the merged prices —
                // the block-Gauss–Seidel schedule. (Positive finite floats
                // sort correctly by their IEEE bit patterns, and bids are
                // always positive.) When no two bids target the same
                // provider the applications commute, so the sort is skipped.
                let mut colliding = false;
                for bid in &result.bids {
                    if collision_mark[bid.provider] == rounds_mark {
                        colliding = true;
                        break;
                    }
                    collision_mark[bid.provider] = rounds_mark;
                }
                rounds_mark += 1;
                if colliding {
                    result.bids.sort_unstable_by_key(|b| {
                        (std::cmp::Reverse(b.amount.to_bits()), b.request)
                    });
                }
                for bid in &result.bids {
                    match auctioneers[bid.provider].handle_bid(bid.request, bid.amount) {
                        BidOutcome::Rejected { .. } => {
                            // A same-slice higher bid beat this one to the
                            // provider; retry in the spill pass (and, if it
                            // loses again, in the next round's worklist).
                            spill.push(bid.request);
                            round_conflicts += 1;
                        }
                        BidOutcome::Accepted { evicted, new_price } => {
                            assigned[bid.request] = Some(bid.edge);
                            if let Some(loser) = evicted {
                                // Retry in the spill pass; the worklist
                                // rebuild below catches later generations.
                                assigned[loser] = None;
                                spill.push(loser);
                                round_conflicts += 1;
                            }
                            if let Some(p) = new_price {
                                probe.price_change(bid.provider, p - eff_price[bid.provider]);
                                eff_price[bid.provider] = p;
                                if self.config.record_price_trace {
                                    trace.push(PriceChange {
                                        round: rounds,
                                        provider: bid.provider,
                                        price: p,
                                    });
                                }
                            }
                        }
                    }
                }
            }
            // The assignment vector and the auctioneer sets must stay in
            // lock-step; a desync would silently corrupt capacities.
            debug_assert_eq!(
                assigned.iter().flatten().count(),
                auctioneers.iter().map(Auctioneer::assigned_len).sum::<usize>(),
                "round {rounds}: assignment/auctioneer desync"
            );
            bids_submitted += round_bids;
            probe.round(
                rounds,
                round_bids,
                round_conflicts,
                u64::from(retry_passes),
                round_retired,
            );
            if round_bids == 0 {
                break;
            }
            // Next round's worklist: everything still alive — unassigned
            // and not retired. Rebuilt from the flags, so evicted requests
            // re-enter and newly retired ones drop out, in ascending order
            // (deterministic partition).
            worklist.clear();
            worklist.extend((0..request_count).filter(|&r| assigned[r].is_none() && !retired[r]));
            if worklist.is_empty() {
                break;
            }
        }

        let lambda = final_prices(instance, &auctioneers);
        let outcome = AuctionOutcome {
            assignment: Assignment::new(assigned),
            duals: DualSolution::from_prices(instance, lambda),
            rounds,
            bids_submitted,
            converged: true,
            price_trace: trace,
        };
        if probe.enabled() {
            // Theorem 1's certificate (dual − primal); only computed when
            // someone is listening.
            let slack =
                outcome.duals.objective(instance) - outcome.assignment.welfare(instance).get();
            probe.run_complete(
                outcome.rounds,
                outcome.bids_submitted,
                outcome.assignment.assigned_count() as u64,
                slack,
            );
        }
        Ok(outcome)
    }
}

/// Computes one slice's bids against a read-only price snapshot — the pure
/// function at the heart of the sharded schedule (safe to fan out across
/// worker threads in any chunking).
fn compute_slice(
    views: &[Vec<EdgeView>],
    slice: &[usize],
    prices: &[f64],
    epsilon: f64,
    out: &mut SliceResult,
) {
    for &r in slice {
        match decide_bid(&views[r], |p| prices[p], epsilon) {
            BidDecision::Bid { edge, provider, amount } => {
                out.bids.push(ShardBid { amount, request: r, edge, provider });
            }
            BidDecision::Abstain { reason } => match reason {
                // Prices are monotone within a run, so a request that is
                // unprofitable (or candidate-less) now stays so forever.
                crate::bidder::AbstainReason::Unprofitable
                | crate::bidder::AbstainReason::NoCandidates => out.retired.push(r),
                // A zero-margin tie can be broken by a *second-best* price
                // rise; the listener wake-up covers that.
                crate::bidder::AbstainReason::ZeroMargin => {}
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::verify_optimality;
    use p2p_types::{ChunkId, Cost, PeerId, RequestId, Valuation, VideoId};

    fn rid(d: u32, c: u32) -> RequestId {
        RequestId::new(PeerId::new(d), ChunkId::new(VideoId::new(0), c))
    }

    /// A deterministic hash in [0, 1) — varied enough that the generated
    /// instance is tie-free (no two net utilities or margins coincide).
    fn unit(seed: u64) -> f64 {
        let mut z = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(0xD1B5_4A32_D192_ED03);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        (z >> 11) as f64 / (1u64 << 53) as f64
    }

    /// A contended instance: 12 requests over 3 providers with 5 total
    /// units, continuous pseudo-random values (tie-free).
    fn contended_instance() -> WelfareInstance {
        let mut b = WelfareInstance::builder();
        let us: Vec<_> = [2u32, 2, 1]
            .iter()
            .enumerate()
            .map(|(i, &c)| b.add_provider(PeerId::new(100 + i as u32), c))
            .collect();
        for d in 0..12u64 {
            let r = b.add_request(rid(d as u32, 0));
            for (i, &u) in us.iter().enumerate() {
                let v = 2.0 + 6.0 * unit(d * 31 + i as u64 * 7 + 1);
                let w = 0.2 + 3.0 * unit(d * 17 + i as u64 * 13 + 2);
                b.add_edge(r, u, Valuation::new(v), Cost::new(w)).unwrap();
            }
        }
        b.build().unwrap()
    }

    #[test]
    fn sharded_matches_exact_optimum_on_tie_free_instance() {
        let inst = contended_instance();
        let out =
            ShardedAuction::new(AuctionConfig::paper(), ShardCount::Fixed(4)).run(&inst).unwrap();
        assert!(out.converged);
        assert!((out.assignment.welfare(&inst).get() - inst.optimal_welfare().get()).abs() < 1e-6);
        assert!(out.assignment.validate(&inst).is_ok());
        let report = verify_optimality(&inst, &out.assignment, &out.duals, 1e-7);
        assert!(report.is_optimal(), "{:?}", report.violations);
    }

    #[test]
    fn every_shard_count_stays_within_the_bertsekas_bound() {
        let eps = 0.01;
        let inst = contended_instance();
        let exact = inst.optimal_welfare().get();
        let bound = inst.request_count() as f64 * eps + 1e-9;
        for n in [2, 3, 8, 64] {
            let out = ShardedAuction::new(AuctionConfig::with_epsilon(eps), ShardCount::Fixed(n))
                .run(&inst)
                .unwrap();
            assert!(
                out.assignment.welfare(&inst).get() >= exact - bound,
                "shards={n}: {} vs exact {exact}",
                out.assignment.welfare(&inst).get()
            );
            let report = verify_optimality(&inst, &out.assignment, &out.duals, eps * 13.0);
            assert!(report.is_optimal(), "shards={n}: {:?}", report.violations);
        }
    }

    #[test]
    fn outcomes_are_reproducible_per_shard_count() {
        let inst = contended_instance();
        let run = || {
            ShardedAuction::new(AuctionConfig::with_epsilon(0.01), ShardCount::Fixed(4))
                .run(&inst)
                .unwrap()
        };
        let a = run();
        let b = run();
        assert_eq!(a.assignment, b.assignment);
        assert_eq!(a.duals, b.duals);
        assert_eq!(a.bids_submitted, b.bids_submitted);
    }

    #[test]
    fn one_shard_delegates_to_the_sync_engine() {
        let inst = contended_instance();
        let sharded = ShardedAuction::new(AuctionConfig::with_epsilon(0.01), ShardCount::Fixed(1))
            .run(&inst)
            .unwrap();
        let sync = SyncAuction::new(AuctionConfig::with_epsilon(0.01)).run(&inst).unwrap();
        assert_eq!(sharded.assignment, sync.assignment);
        assert_eq!(sharded.duals, sync.duals);
        assert_eq!(sharded.bids_submitted, sync.bids_submitted);
    }

    #[test]
    fn forced_worker_threads_match_the_sequential_path() {
        let inst = contended_instance();
        let base = ShardedAuction::new(
            AuctionConfig::with_epsilon(0.01).recording_trace(),
            ShardCount::Fixed(4),
        );
        let sequential = base.clone().with_workers(1).run(&inst).unwrap();
        let threaded = base.with_workers(3).run(&inst).unwrap();
        assert_eq!(sequential.assignment, threaded.assignment);
        assert_eq!(sequential.duals, threaded.duals);
        assert_eq!(sequential.rounds, threaded.rounds);
        assert_eq!(sequential.bids_submitted, threaded.bids_submitted);
        // Including the price trace: merge input order must not depend on
        // thread timing even for batches whose sort is skipped.
        assert_eq!(sequential.price_trace, threaded.price_trace);
    }

    #[test]
    fn warm_start_composes_with_sharding() {
        let eps = 0.01;
        let inst = contended_instance();
        let engine = ShardedAuction::new(AuctionConfig::with_epsilon(eps), ShardCount::Fixed(4));
        let cold = engine.run(&inst).unwrap();
        let warm = engine.run_warm(&inst, &cold.duals.lambda).unwrap();
        assert_eq!(warm.assignment.welfare(&inst), cold.assignment.welfare(&inst));
        assert!(warm.bids_submitted <= cold.bids_submitted);
        let tol = eps * (inst.request_count() as f64 + 1.0);
        let report = verify_optimality(&inst, &warm.assignment, &warm.duals, tol);
        assert!(report.is_optimal(), "{:?}", report.violations);
    }

    #[test]
    fn warm_start_repairs_unsupported_prices_like_sync() {
        let inst = contended_instance();
        let engine = ShardedAuction::new(AuctionConfig::paper(), ShardCount::Fixed(4));
        let warm = engine.run_warm(&inst, &[1e6, 1e6, 1e6]).unwrap();
        let report = verify_optimality(&inst, &warm.assignment, &warm.duals, 1e-7);
        assert!(report.is_optimal(), "{:?}", report.violations);
    }

    #[test]
    fn empty_instance_converges_immediately() {
        let inst = WelfareInstance::builder().build().unwrap();
        let out =
            ShardedAuction::new(AuctionConfig::paper(), ShardCount::Fixed(4)).run(&inst).unwrap();
        assert_eq!(out.rounds, 1);
        assert_eq!(out.bids_submitted, 0);
    }

    #[test]
    fn epsilon_resolves_ties_within_the_bertsekas_bound() {
        // Twin requests over twin providers: ε = 0 abstains, ε > 0 serves
        // both within n·ε — mirroring the sync engine's behavior.
        let mut b = WelfareInstance::builder();
        let u0 = b.add_provider(PeerId::new(100), 1);
        let u1 = b.add_provider(PeerId::new(101), 1);
        for d in 0..2 {
            let r = b.add_request(rid(d, 0));
            b.add_edge(r, u0, Valuation::new(5.0), Cost::new(1.0)).unwrap();
            b.add_edge(r, u1, Valuation::new(5.0), Cost::new(1.0)).unwrap();
        }
        let inst = b.build().unwrap();
        let stalled =
            ShardedAuction::new(AuctionConfig::paper(), ShardCount::Fixed(2)).run(&inst).unwrap();
        assert_eq!(stalled.assignment.assigned_count(), 0);
        let out = ShardedAuction::new(AuctionConfig::with_epsilon(0.01), ShardCount::Fixed(2))
            .run(&inst)
            .unwrap();
        assert_eq!(out.assignment.assigned_count(), 2);
        assert!(out.assignment.welfare(&inst).get() >= inst.optimal_welfare().get() - 0.02);
    }

    #[test]
    fn retired_requests_are_not_rescanned() {
        // One provider, one profitable and many unprofitable requests: the
        // unprofitable ones must be retired in round 1, so total bids stay
        // tiny even though prices keep changing.
        let mut b = WelfareInstance::builder();
        let u = b.add_provider(PeerId::new(9), 1);
        let good0 = b.add_request(rid(0, 0));
        b.add_edge(good0, u, Valuation::new(6.0), Cost::new(1.0)).unwrap();
        let good1 = b.add_request(rid(1, 0));
        b.add_edge(good1, u, Valuation::new(5.0), Cost::new(1.0)).unwrap();
        for d in 2..40 {
            let r = b.add_request(rid(d, 0));
            b.add_edge(r, u, Valuation::new(1.0), Cost::new(2.0)).unwrap();
        }
        let inst = b.build().unwrap();
        let out =
            ShardedAuction::new(AuctionConfig::paper(), ShardCount::Fixed(4)).run(&inst).unwrap();
        assert_eq!(out.assignment.assigned_count(), 1);
        assert!(
            out.bids_submitted <= 4,
            "retirement must cap rebidding, got {}",
            out.bids_submitted
        );
    }

    #[test]
    fn price_trace_is_monotone_per_provider() {
        let inst = contended_instance();
        let out = ShardedAuction::new(
            AuctionConfig::with_epsilon(0.01).recording_trace(),
            ShardCount::Fixed(4),
        )
        .run(&inst)
        .unwrap();
        assert!(!out.price_trace.is_empty());
        let mut last = vec![0.0; inst.provider_count()];
        for pc in &out.price_trace {
            assert!(pc.price >= last[pc.provider]);
            last[pc.provider] = pc.price;
        }
    }

    #[test]
    fn divergence_guard_fires_with_tiny_round_budget() {
        let inst = contended_instance();
        let cfg = AuctionConfig { max_rounds: 0, ..AuctionConfig::paper() };
        let err = ShardedAuction::new(cfg, ShardCount::Fixed(2)).run(&inst).unwrap_err();
        assert!(matches!(err, P2pError::AuctionDiverged { .. }));
    }

    #[test]
    fn shard_count_parses_and_validates() {
        assert_eq!(ShardCount::from_name("auto").unwrap(), ShardCount::Auto);
        assert_eq!(ShardCount::from_name("4").unwrap(), ShardCount::Fixed(4));
        assert!(ShardCount::from_name("0").is_err());
        assert!(ShardCount::from_name("many").is_err());
        assert_eq!(ShardCount::Fixed(8).name(), "8");
        assert_eq!(ShardCount::Auto.name(), "auto");
        assert!(ShardCount::Fixed(0).validate().is_err());
        assert!(ShardCount::Auto.validate().is_ok());
        assert!(ShardCount::Auto.resolve() >= 1);
        assert_eq!(ShardCount::Fixed(5).resolve(), 5);
        assert_eq!(ShardCount::default(), ShardCount::Auto);
    }

    #[test]
    fn auto_adapts_to_live_slot_size() {
        let per = ShardCount::AUTO_REQUESTS_PER_SHARD;
        // Small slots run the sequential sweep.
        assert_eq!(ShardCount::Auto.resolve_for(0), 1);
        assert_eq!(ShardCount::Auto.resolve_for(per - 1), 1);
        assert_eq!(ShardCount::Auto.resolve_for(2 * per - 1), 1);
        // Flash-crowd slots grow toward the core count.
        let cores = ShardCount::Auto.resolve();
        assert_eq!(ShardCount::Auto.resolve_for(4 * per), 4.min(cores));
        assert_eq!(ShardCount::Auto.resolve_for(10_000 * per), cores);
        // Fixed counts ignore the slot size.
        assert_eq!(ShardCount::Fixed(3).resolve_for(1), 3);
        assert_eq!(ShardCount::Fixed(0).resolve_for(1_000_000), 1);
    }

    #[test]
    fn zero_capacity_providers_are_ignored() {
        let mut b = WelfareInstance::builder();
        let dead = b.add_provider(PeerId::new(9), 0);
        let live = b.add_provider(PeerId::new(10), 1);
        let r = b.add_request(rid(0, 0));
        b.add_edge(r, dead, Valuation::new(8.0), Cost::new(0.0)).unwrap();
        b.add_edge(r, live, Valuation::new(8.0), Cost::new(2.0)).unwrap();
        let inst = b.build().unwrap();
        let out =
            ShardedAuction::new(AuctionConfig::paper(), ShardCount::Fixed(2)).run(&inst).unwrap();
        assert_eq!(out.assignment.provider_of(&inst, 0), Some(live));
        assert!(out.duals.validate(&inst, 1e-9).is_ok());
    }
}
