//! Instance diff/patch: the slot-to-slot change between welfare instances.
//!
//! The streaming emulator's consecutive slot problems overlap heavily —
//! locality-aware swarms change little from slot to slot, so most providers
//! and requests carry over with only their valuations refreshed (deadlines
//! approach, so the deadline valuation is re-evaluated every slot).
//! [`InstanceDiff`] measures that overlap on identity keys (providers by
//! peer id, requests by request id), and [`InstancePatch`] captures a
//! *successor* instance as a compact edit script against its predecessor:
//! carried requests store only the refreshed valuation, fresh requests store
//! their full edge lists. `patch.apply(prev)` reconstructs the successor
//! exactly (including provider/request order, which the deterministic
//! auction engines are sensitive to).

use crate::instance::{EdgeSpec, RequestSpec, WelfareInstance};
use p2p_types::{Bandwidth, P2pError, PeerId, RequestId, Valuation};
use std::collections::HashMap;

/// What changed between two instances, keyed on identity.
///
/// # Examples
///
/// ```
/// use p2p_core::{InstanceDiff, WelfareInstance};
/// use p2p_types::{PeerId, RequestId, ChunkId, VideoId, Valuation, Cost};
///
/// let mut b = WelfareInstance::builder();
/// let u = b.add_provider(PeerId::new(9), 2);
/// let r = b.add_request(RequestId::new(PeerId::new(0), ChunkId::new(VideoId::new(0), 0)));
/// b.add_edge(r, u, Valuation::new(3.0), Cost::new(1.0)).unwrap();
/// let a = b.build().unwrap();
/// let diff = InstanceDiff::between(&a, &a);
/// assert!(diff.is_empty());
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct InstanceDiff {
    /// Providers present only in the successor.
    pub added_providers: Vec<PeerId>,
    /// Providers present only in the predecessor.
    pub removed_providers: Vec<PeerId>,
    /// Providers present in both with different capacities.
    pub changed_capacities: Vec<PeerId>,
    /// Requests present only in the successor.
    pub added_requests: Vec<RequestId>,
    /// Requests present only in the predecessor.
    pub removed_requests: Vec<RequestId>,
    /// Requests present in both whose candidate edges differ (provider set,
    /// order, costs or valuations).
    pub changed_requests: Vec<RequestId>,
}

impl InstanceDiff {
    /// Computes the identity-keyed diff from `prev` to `next`.
    pub fn between(prev: &WelfareInstance, next: &WelfareInstance) -> Self {
        let mut diff = InstanceDiff::default();

        let prev_caps: HashMap<PeerId, Bandwidth> =
            prev.providers().iter().map(|p| (p.peer, p.capacity)).collect();
        let next_caps: HashMap<PeerId, Bandwidth> =
            next.providers().iter().map(|p| (p.peer, p.capacity)).collect();
        for p in next.providers() {
            match prev_caps.get(&p.peer) {
                None => diff.added_providers.push(p.peer),
                Some(cap) if *cap != p.capacity => diff.changed_capacities.push(p.peer),
                Some(_) => {}
            }
        }
        for p in prev.providers() {
            if !next_caps.contains_key(&p.peer) {
                diff.removed_providers.push(p.peer);
            }
        }

        let prev_by_id: HashMap<RequestId, usize> =
            prev.requests().iter().enumerate().map(|(i, r)| (r.id, i)).collect();
        let mut kept = std::collections::HashSet::new();
        for req in next.requests() {
            match prev_by_id.get(&req.id) {
                None => diff.added_requests.push(req.id),
                Some(&i) => {
                    kept.insert(req.id);
                    if !same_edges(prev, prev.request(i), next, req) {
                        diff.changed_requests.push(req.id);
                    }
                }
            }
        }
        for req in prev.requests() {
            if !kept.contains(&req.id) {
                diff.removed_requests.push(req.id);
            }
        }
        diff
    }

    /// Whether the two instances are identical up to provider/request order.
    pub fn is_empty(&self) -> bool {
        self.change_count() == 0
    }

    /// Total number of changed entities.
    pub fn change_count(&self) -> usize {
        self.added_providers.len()
            + self.removed_providers.len()
            + self.changed_capacities.len()
            + self.added_requests.len()
            + self.removed_requests.len()
            + self.changed_requests.len()
    }
}

/// Whether a request's edges are identical in both instances (providers
/// compared by peer id, in order, with costs and valuations).
fn same_edges(
    prev: &WelfareInstance,
    a: &RequestSpec,
    next: &WelfareInstance,
    b: &RequestSpec,
) -> bool {
    a.edges.len() == b.edges.len()
        && a.edges.iter().zip(&b.edges).all(|(ea, eb)| {
            prev.provider(ea.provider).peer == next.provider(eb.provider).peer
                && ea.cost == eb.cost
                && ea.valuation == eb.valuation
        })
}

/// One request of a patched instance.
#[derive(Debug, Clone, PartialEq)]
enum RequestPatch {
    /// Carried over from the predecessor's request at `prev`: identical
    /// provider set, order and costs, with `valuation` applied to every
    /// edge (the streaming emulator re-values each request every slot).
    Carried { prev: usize, valuation: Valuation },
    /// Built from scratch; edges reference *successor* provider indices.
    Fresh(RequestSpec),
}

/// A successor instance expressed as an edit script against a predecessor.
///
/// # Examples
///
/// ```
/// use p2p_core::{InstancePatch, WelfareInstance};
/// use p2p_types::{PeerId, RequestId, ChunkId, VideoId, Valuation, Cost};
///
/// let build = |v: f64| {
///     let mut b = WelfareInstance::builder();
///     let u = b.add_provider(PeerId::new(9), 2);
///     let r = b.add_request(RequestId::new(PeerId::new(0), ChunkId::new(VideoId::new(0), 0)));
///     b.add_edge(r, u, Valuation::new(v), Cost::new(1.0)).unwrap();
///     b.build().unwrap()
/// };
/// let (prev, next) = (build(3.0), build(4.0)); // valuation refresh only
/// let patch = InstancePatch::between(&prev, &next);
/// assert_eq!(patch.carried_requests(), 1);
/// assert_eq!(patch.apply(&prev).unwrap(), next);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct InstancePatch {
    /// The successor's full provider list (cheap relative to edges).
    providers: Vec<(PeerId, Bandwidth)>,
    requests: Vec<RequestPatch>,
}

impl InstancePatch {
    /// Expresses `next` as a patch against `prev`, carrying every request
    /// whose edge structure (providers, order, costs) is unchanged and
    /// whose refreshed valuation is uniform across its edges.
    pub fn between(prev: &WelfareInstance, next: &WelfareInstance) -> Self {
        let providers = next.providers().iter().map(|p| (p.peer, p.capacity)).collect();
        let prev_by_id: HashMap<RequestId, usize> =
            prev.requests().iter().enumerate().map(|(i, r)| (r.id, i)).collect();
        let requests = next
            .requests()
            .iter()
            .map(|req| {
                let carried = prev_by_id.get(&req.id).copied().filter(|&i| {
                    let old = prev.request(i);
                    uniform_valuation(req).is_some()
                        && old.edges.len() == req.edges.len()
                        && old.edges.iter().zip(&req.edges).all(|(ea, eb)| {
                            prev.provider(ea.provider).peer == next.provider(eb.provider).peer
                                && ea.cost == eb.cost
                        })
                });
                match carried {
                    Some(i) => RequestPatch::Carried {
                        prev: i,
                        valuation: uniform_valuation(req).expect("checked above"),
                    },
                    None => RequestPatch::Fresh(req.clone()),
                }
            })
            .collect();
        InstancePatch { providers, requests }
    }

    /// Number of requests carried structurally from the predecessor.
    pub fn carried_requests(&self) -> usize {
        self.requests.iter().filter(|r| matches!(r, RequestPatch::Carried { .. })).count()
    }

    /// Number of requests rebuilt from scratch.
    pub fn fresh_requests(&self) -> usize {
        self.requests.len() - self.carried_requests()
    }

    /// Fraction of requests carried over (1.0 for an unchanged slot; 0 when
    /// the successor is empty).
    pub fn carried_fraction(&self) -> f64 {
        if self.requests.is_empty() {
            0.0
        } else {
            self.carried_requests() as f64 / self.requests.len() as f64
        }
    }

    /// Reconstructs the successor instance from the predecessor.
    ///
    /// # Errors
    ///
    /// Returns [`P2pError::MalformedInstance`] if the patch references
    /// requests or providers that do not exist in `prev` — a patch is only
    /// valid against the instance it was diffed from.
    pub fn apply(&self, prev: &WelfareInstance) -> Result<WelfareInstance, P2pError> {
        let mut b = WelfareInstance::builder();
        let mut idx_of: HashMap<PeerId, usize> = HashMap::with_capacity(self.providers.len());
        for &(peer, capacity) in &self.providers {
            idx_of.insert(peer, b.add_provider(peer, capacity.chunks_per_slot()));
        }
        for patch in &self.requests {
            match patch {
                RequestPatch::Carried { prev: i, valuation } => {
                    if *i >= prev.request_count() {
                        return Err(P2pError::MalformedInstance(format!(
                            "patch carries request {i} but predecessor has {}",
                            prev.request_count()
                        )));
                    }
                    let old = prev.request(*i);
                    let r = b.add_request(old.id);
                    for e in &old.edges {
                        let peer = prev.provider(e.provider).peer;
                        let Some(&u) = idx_of.get(&peer) else {
                            return Err(P2pError::MalformedInstance(format!(
                                "carried request references departed provider {peer}"
                            )));
                        };
                        b.add_edge(r, u, *valuation, e.cost)?;
                    }
                }
                RequestPatch::Fresh(spec) => {
                    let r = b.add_request(spec.id);
                    for &EdgeSpec { provider, valuation, cost } in &spec.edges {
                        b.add_edge(r, provider, valuation, cost)?;
                    }
                }
            }
        }
        b.build()
    }
}

/// The valuation shared by every edge of a request, if uniform.
fn uniform_valuation(req: &RequestSpec) -> Option<Valuation> {
    let first = req.edges.first()?.valuation;
    req.edges.iter().all(|e| e.valuation == first).then_some(first)
}

#[cfg(test)]
mod tests {
    use super::*;
    use p2p_types::{ChunkId, Cost, VideoId};

    fn rid(d: u32, c: u32) -> RequestId {
        RequestId::new(PeerId::new(d), ChunkId::new(VideoId::new(0), c))
    }

    /// Two providers, two requests; `v` sets the per-request valuations.
    fn instance(v0: f64, v1: f64, cap0: u32) -> WelfareInstance {
        let mut b = WelfareInstance::builder();
        let u0 = b.add_provider(PeerId::new(100), cap0);
        let u1 = b.add_provider(PeerId::new(101), 2);
        let r0 = b.add_request(rid(0, 0));
        let r1 = b.add_request(rid(1, 0));
        b.add_edge(r0, u0, Valuation::new(v0), Cost::new(1.0)).unwrap();
        b.add_edge(r0, u1, Valuation::new(v0), Cost::new(2.0)).unwrap();
        b.add_edge(r1, u1, Valuation::new(v1), Cost::new(0.5)).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn identical_instances_diff_empty() {
        let a = instance(4.0, 3.0, 1);
        let diff = InstanceDiff::between(&a, &a);
        assert!(diff.is_empty());
        assert_eq!(diff.change_count(), 0);
    }

    #[test]
    fn diff_spots_every_change_kind() {
        let prev = instance(4.0, 3.0, 1);
        let mut b = WelfareInstance::builder();
        let u0 = b.add_provider(PeerId::new(100), 3); // capacity changed
        let u2 = b.add_provider(PeerId::new(102), 1); // provider added, 101 removed
        let r0 = b.add_request(rid(0, 0)); // edges changed (u1 edge gone)
        let r2 = b.add_request(rid(2, 0)); // request added, r1 removed
        b.add_edge(r0, u0, Valuation::new(4.0), Cost::new(1.0)).unwrap();
        b.add_edge(r2, u2, Valuation::new(2.0), Cost::new(0.1)).unwrap();
        let next = b.build().unwrap();
        let diff = InstanceDiff::between(&prev, &next);
        assert_eq!(diff.added_providers, vec![PeerId::new(102)]);
        assert_eq!(diff.removed_providers, vec![PeerId::new(101)]);
        assert_eq!(diff.changed_capacities, vec![PeerId::new(100)]);
        assert_eq!(diff.added_requests, vec![rid(2, 0)]);
        assert_eq!(diff.removed_requests, vec![rid(1, 0)]);
        assert_eq!(diff.changed_requests, vec![rid(0, 0)]);
        assert_eq!(diff.change_count(), 6);
    }

    #[test]
    fn valuation_refresh_is_carried_and_applies_exactly() {
        let prev = instance(4.0, 3.0, 1);
        let next = instance(5.0, 3.5, 1);
        let patch = InstancePatch::between(&prev, &next);
        assert_eq!(patch.carried_requests(), 2);
        assert_eq!(patch.fresh_requests(), 0);
        assert!((patch.carried_fraction() - 1.0).abs() < 1e-12);
        assert_eq!(patch.apply(&prev).unwrap(), next);
    }

    #[test]
    fn structural_changes_fall_back_to_fresh_and_apply_exactly() {
        let prev = instance(4.0, 3.0, 1);
        // Capacity change + one request's edges reordered structurally.
        let mut b = WelfareInstance::builder();
        let u0 = b.add_provider(PeerId::new(100), 2);
        let u1 = b.add_provider(PeerId::new(101), 2);
        let r0 = b.add_request(rid(0, 0));
        let r1 = b.add_request(rid(1, 0));
        b.add_edge(r0, u1, Valuation::new(4.0), Cost::new(2.0)).unwrap();
        b.add_edge(r0, u0, Valuation::new(4.0), Cost::new(1.0)).unwrap();
        b.add_edge(r1, u1, Valuation::new(3.0), Cost::new(0.5)).unwrap();
        let next = b.build().unwrap();
        let patch = InstancePatch::between(&prev, &next);
        assert_eq!(patch.fresh_requests(), 1);
        assert_eq!(patch.carried_requests(), 1);
        assert_eq!(patch.apply(&prev).unwrap(), next);
    }

    #[test]
    fn patch_against_wrong_predecessor_errors() {
        let prev = instance(4.0, 3.0, 1);
        let next = instance(5.0, 3.5, 1);
        let patch = InstancePatch::between(&prev, &next);
        // An empty predecessor has no request to carry from.
        let empty = WelfareInstance::builder().build().unwrap();
        assert!(patch.apply(&empty).is_err());
    }

    #[test]
    fn empty_instances_patch_cleanly() {
        let empty = WelfareInstance::builder().build().unwrap();
        let patch = InstancePatch::between(&empty, &empty);
        assert_eq!(patch.carried_fraction(), 0.0);
        assert_eq!(patch.apply(&empty).unwrap(), empty);
    }
}
