//! Primal (assignment) and dual (price) solutions.

use crate::instance::{ProviderIdx, RequestIdx, WelfareInstance};
use p2p_types::{P2pError, Utility};
use serde::{Deserialize, Serialize};

/// A binary primal solution: for each request, which of its candidate edges
/// (if any) is selected (`a^{(c)}_{u→d} = 1`).
///
/// # Examples
///
/// ```
/// use p2p_core::{Assignment, WelfareInstance};
/// use p2p_types::{PeerId, RequestId, ChunkId, VideoId, Valuation, Cost, Utility};
///
/// let mut b = WelfareInstance::builder();
/// let u = b.add_provider(PeerId::new(9), 1);
/// let r = b.add_request(RequestId::new(PeerId::new(0), ChunkId::new(VideoId::new(0), 0)));
/// b.add_edge(r, u, Valuation::new(3.0), Cost::new(1.0)).unwrap();
/// let inst = b.build().unwrap();
///
/// let a = Assignment::new(vec![Some(0)]);
/// assert_eq!(a.welfare(&inst), Utility::new(2.0));
/// assert!(a.validate(&inst).is_ok());
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Assignment {
    /// Per request: index into that request's `edges` vector, or `None`.
    choices: Vec<Option<usize>>,
}

impl Assignment {
    /// Wraps per-request edge choices.
    pub fn new(choices: Vec<Option<usize>>) -> Self {
        Assignment { choices }
    }

    /// An all-unassigned solution for `n` requests.
    pub fn empty(n: usize) -> Self {
        Assignment { choices: vec![None; n] }
    }

    /// The per-request choices.
    pub fn choices(&self) -> &[Option<usize>] {
        &self.choices
    }

    /// The edge chosen for a request, if any.
    pub fn choice(&self, request: RequestIdx) -> Option<usize> {
        self.choices.get(request).copied().flatten()
    }

    /// The provider serving `request`, if any.
    pub fn provider_of(
        &self,
        instance: &WelfareInstance,
        request: RequestIdx,
    ) -> Option<ProviderIdx> {
        self.choice(request).map(|e| instance.request(request).edges[e].provider)
    }

    /// Number of served requests.
    pub fn assigned_count(&self) -> usize {
        self.choices.iter().filter(|c| c.is_some()).count()
    }

    /// The social welfare `Σ a·(v − w)` of this assignment.
    ///
    /// # Panics
    ///
    /// Panics if the assignment refers to edges that do not exist in
    /// `instance` (use [`Assignment::validate`] first for untrusted data).
    pub fn welfare(&self, instance: &WelfareInstance) -> Utility {
        let mut total = Utility::ZERO;
        for (r, choice) in self.choices.iter().enumerate() {
            if let Some(e) = choice {
                total += instance.request(r).edges[*e].utility();
            }
        }
        total
    }

    /// Checks primal feasibility against `instance`: choice indices in
    /// range, and no provider serving more than `B(u)` requests.
    ///
    /// # Errors
    ///
    /// Returns [`P2pError::MalformedInstance`] describing the first
    /// violation found.
    pub fn validate(&self, instance: &WelfareInstance) -> Result<(), P2pError> {
        if self.choices.len() != instance.request_count() {
            return Err(P2pError::MalformedInstance(format!(
                "assignment covers {} requests but instance has {}",
                self.choices.len(),
                instance.request_count()
            )));
        }
        let mut load = vec![0u32; instance.provider_count()];
        for (r, choice) in self.choices.iter().enumerate() {
            if let Some(e) = choice {
                let edges = &instance.request(r).edges;
                if *e >= edges.len() {
                    return Err(P2pError::MalformedInstance(format!(
                        "request {r} chose edge {e} but has {} edges",
                        edges.len()
                    )));
                }
                load[edges[*e].provider] += 1;
            }
        }
        for (p, l) in load.iter().enumerate() {
            let cap = instance.provider(p).capacity.chunks_per_slot();
            if *l > cap {
                return Err(P2pError::MalformedInstance(format!(
                    "provider {p} serves {l} requests, exceeding capacity {cap}"
                )));
            }
        }
        Ok(())
    }

    /// Per-provider load (number of served requests).
    pub fn provider_loads(&self, instance: &WelfareInstance) -> Vec<u32> {
        let mut load = vec![0u32; instance.provider_count()];
        for (r, choice) in self.choices.iter().enumerate() {
            if let Some(e) = choice {
                load[instance.request(r).edges[*e].provider] += 1;
            }
        }
        load
    }
}

/// A dual solution: bandwidth prices `λ_u` and request utilities
/// `η^{(c)}_d` (problem (5) of the paper).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DualSolution {
    /// Per provider: the bandwidth unit price `λ_u ≥ 0`.
    pub lambda: Vec<f64>,
    /// Per request: the achieved net utility `η^{(c)}_d ≥ 0`.
    pub eta: Vec<f64>,
}

impl DualSolution {
    /// Derives the optimal `η` values from prices:
    /// `η = max(0, max_u {v − w − λ_u})`, the smallest feasible choice
    /// (the paper sets `η` to the max; clamping at 0 enforces dual
    /// constraint (8) when every edge is unprofitable).
    pub fn from_prices(instance: &WelfareInstance, lambda: Vec<f64>) -> Self {
        assert_eq!(lambda.len(), instance.provider_count(), "one price per provider");
        let eta = instance
            .requests()
            .iter()
            .map(|r| {
                r.edges
                    .iter()
                    .map(|e| e.utility().get() - lambda[e.provider])
                    .fold(0.0_f64, f64::max)
            })
            .collect();
        DualSolution { lambda, eta }
    }

    /// [`DualSolution::from_prices`] over a flat CSR compilation: derives
    /// the same `η = max(0, max_u {v − w − λ_u})` from the CSR rows, so the
    /// result is bit-identical to deriving it from the nested instance.
    ///
    /// # Examples
    ///
    /// ```
    /// use p2p_core::csr::CsrInstance;
    /// use p2p_core::{DualSolution, WelfareInstance};
    /// use p2p_types::{ChunkId, Cost, PeerId, RequestId, Valuation, VideoId};
    ///
    /// let mut b = WelfareInstance::builder();
    /// let u = b.add_provider(PeerId::new(9), 1);
    /// let r = b.add_request(RequestId::new(PeerId::new(0), ChunkId::new(VideoId::new(0), 0)));
    /// b.add_edge(r, u, Valuation::new(4.0), Cost::new(1.0)).unwrap();
    /// let inst = b.build().unwrap();
    /// let csr = CsrInstance::compile(&inst);
    /// let nested = DualSolution::from_prices(&inst, vec![1.0]);
    /// let flat = DualSolution::from_csr_prices(&csr, vec![1.0]);
    /// assert_eq!(nested, flat);
    /// ```
    pub fn from_csr_prices(csr: &crate::csr::CsrInstance, lambda: Vec<f64>) -> Self {
        assert_eq!(lambda.len(), csr.provider_count(), "one price per provider");
        let data = csr.data();
        let eta = (0..data.request_count())
            .map(|r| {
                let (providers, utilities) = data.row(r);
                providers
                    .iter()
                    .zip(utilities)
                    .map(|(&u, &util)| util - lambda[u as usize])
                    .fold(0.0_f64, f64::max)
            })
            .collect();
        DualSolution { lambda, eta }
    }

    /// The dual objective `Σ λ_u B(u) + Σ η` (problem (5)).
    pub fn objective(&self, instance: &WelfareInstance) -> f64 {
        let prices: f64 = self
            .lambda
            .iter()
            .zip(instance.providers())
            .map(|(l, p)| l * f64::from(p.capacity.chunks_per_slot()))
            .sum();
        prices + self.eta.iter().sum::<f64>()
    }

    /// Checks dual feasibility within tolerance `tol`: constraints (6)–(8).
    ///
    /// # Errors
    ///
    /// Returns [`P2pError::MalformedInstance`] describing the first
    /// violated constraint.
    pub fn validate(&self, instance: &WelfareInstance, tol: f64) -> Result<(), P2pError> {
        if self.lambda.len() != instance.provider_count()
            || self.eta.len() != instance.request_count()
        {
            return Err(P2pError::MalformedInstance("dual dimensions mismatch".into()));
        }
        for (u, l) in self.lambda.iter().enumerate() {
            if *l < -tol {
                return Err(P2pError::MalformedInstance(format!(
                    "lambda[{u}] = {l} violates non-negativity"
                )));
            }
        }
        for (r, e) in self.eta.iter().enumerate() {
            if *e < -tol {
                return Err(P2pError::MalformedInstance(format!(
                    "eta[{r}] = {e} violates non-negativity"
                )));
            }
        }
        for (r, req) in instance.requests().iter().enumerate() {
            for edge in &req.edges {
                let slack = self.lambda[edge.provider] + self.eta[r] - edge.utility().get();
                if slack < -tol {
                    return Err(P2pError::MalformedInstance(format!(
                        "dual constraint violated at request {r} provider {}: \
                         lambda + eta = {} < v - w = {}",
                        edge.provider,
                        self.lambda[edge.provider] + self.eta[r],
                        edge.utility().get()
                    )));
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use p2p_types::{ChunkId, Cost, PeerId, RequestId, Valuation, VideoId};

    fn two_req_one_provider() -> WelfareInstance {
        let mut b = WelfareInstance::builder();
        let u = b.add_provider(PeerId::new(10), 1);
        let r0 = b.add_request(RequestId::new(PeerId::new(0), ChunkId::new(VideoId::new(0), 0)));
        let r1 = b.add_request(RequestId::new(PeerId::new(1), ChunkId::new(VideoId::new(0), 0)));
        b.add_edge(r0, u, Valuation::new(5.0), Cost::new(1.0)).unwrap();
        b.add_edge(r1, u, Valuation::new(4.0), Cost::new(1.0)).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn welfare_and_counts() {
        let inst = two_req_one_provider();
        let a = Assignment::new(vec![Some(0), None]);
        assert_eq!(a.welfare(&inst), Utility::new(4.0));
        assert_eq!(a.assigned_count(), 1);
        assert_eq!(a.provider_of(&inst, 0), Some(0));
        assert_eq!(a.provider_of(&inst, 1), None);
        assert_eq!(a.provider_loads(&inst), vec![1]);
    }

    #[test]
    fn capacity_violation_detected() {
        let inst = two_req_one_provider();
        let a = Assignment::new(vec![Some(0), Some(0)]);
        assert!(a.validate(&inst).is_err());
    }

    #[test]
    fn out_of_range_choice_detected() {
        let inst = two_req_one_provider();
        let a = Assignment::new(vec![Some(5), None]);
        assert!(a.validate(&inst).is_err());
        let a = Assignment::new(vec![Some(0)]);
        assert!(a.validate(&inst).is_err(), "length mismatch");
    }

    #[test]
    fn empty_assignment_is_feasible() {
        let inst = two_req_one_provider();
        let a = Assignment::empty(2);
        assert!(a.validate(&inst).is_ok());
        assert_eq!(a.welfare(&inst), Utility::ZERO);
    }

    #[test]
    fn dual_from_prices_clamps_eta_at_zero() {
        let inst = two_req_one_provider();
        // Price higher than any utility: eta = 0 for both requests.
        let d = DualSolution::from_prices(&inst, vec![10.0]);
        assert_eq!(d.eta, vec![0.0, 0.0]);
        assert!(d.validate(&inst, 1e-9).is_ok());
        // Dual objective = 10 * B(u) = 10.
        assert!((d.objective(&inst) - 10.0).abs() < 1e-12);
    }

    #[test]
    fn dual_from_prices_takes_best_edge() {
        let inst = two_req_one_provider();
        let d = DualSolution::from_prices(&inst, vec![1.0]);
        // Request 0: v-w-λ = 4-1 = 3; request 1: 3-1 = 2.
        assert_eq!(d.eta, vec![3.0, 2.0]);
        assert!(d.validate(&inst, 1e-9).is_ok());
    }

    #[test]
    fn dual_infeasibility_detected() {
        let inst = two_req_one_provider();
        // λ = 0, η = 0: constraint λ+η >= v-w = 4 violated.
        let d = DualSolution { lambda: vec![0.0], eta: vec![0.0, 0.0] };
        assert!(d.validate(&inst, 1e-9).is_err());
        let d = DualSolution { lambda: vec![-1.0], eta: vec![9.0, 9.0] };
        assert!(d.validate(&inst, 1e-9).is_err());
        let d = DualSolution { lambda: vec![0.0], eta: vec![9.0] };
        assert!(d.validate(&inst, 1e-9).is_err(), "dimension mismatch");
    }

    #[test]
    fn weak_duality_holds_for_feasible_pair() {
        let inst = two_req_one_provider();
        let a = Assignment::new(vec![Some(0), None]);
        let d = DualSolution::from_prices(&inst, vec![3.0]);
        assert!(d.validate(&inst, 1e-9).is_ok());
        assert!(a.welfare(&inst).get() <= d.objective(&inst) + 1e-9);
    }
}
