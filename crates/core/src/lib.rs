//! The paper's primary contribution: a primal-dual auction for
//! socially-optimal, ISP-aware P2P chunk scheduling.
//!
//! # The problem
//!
//! In each time slot the system must decide `a^{(c)}_{u→d} ∈ {0,1}` — which
//! peer `d` downloads which chunk `c` from which neighbor `u` — to maximize
//! social welfare `Σ a·(v^{(c)}(d) − w_{u→d})` subject to upload capacities
//! `B(u)` and at most one source per request (problem (1) of the paper).
//! This crate models one slot's problem as a [`WelfareInstance`].
//!
//! # The algorithm
//!
//! The integer program is a transportation problem; following Bertsekas'
//! primal-dual auction framework, every provider `u` auctions its `B(u)`
//! bandwidth units at price `λ_u` (the dual variable of its capacity
//! constraint) and every request bids at the provider offering the largest
//! net utility `v − w − λ`, with bid `b = λ* + φ* − φ̂` (best-minus-second
//! margin). Three interchangeable executions of the same bidder/auctioneer
//! logic are provided:
//!
//! * [`engine::SyncAuction`] — deterministic synchronous rounds (fast path
//!   used by schedulers, tests and benchmarks);
//! * [`shard::ShardedAuction`] — sharded Jacobi rounds with batched price
//!   updates and price-delta worklists, for 10³–10⁴-request slots (parallel
//!   across cores when the machine has them);
//! * [`csr::FlatAuction`] — the same sequential and sharded schedules over
//!   a flat CSR compilation of the instance ([`csr::CsrInstance`]) with
//!   reusable scratch: zero heap allocations in the hot loop after
//!   warm-up, bit-identical outcomes to the two engines above;
//! * [`dist::DistributedAuction`] — message-level asynchronous execution on
//!   the discrete-event simulator with per-link latencies (used to
//!   reproduce Fig. 2's within-slot price convergence);
//! * [`swarm::SwarmAuction`] — the transport-agnostic [`protocol`] state
//!   machines as logical actors on virtual time, behind a seeded
//!   fault-injecting [`swarm::NetworkModel`]: bit-identical to the
//!   synchronous sweep under the ideal model, certified within `n·ε`
//!   under drop/delay/reorder/duplicate faults, 10⁵-peer slots in seconds;
//! * the classic assignment-problem auction ([`bertsekas`]) together with
//!   the transportation → assignment expansion of the paper's Fig. 1.
//!
//! # Optimality verification
//!
//! Theorem 1 states the auction terminates at an optimal primal/dual pair.
//! [`verify`] checks dual feasibility and all three complementary slackness
//! conditions from the paper's appendix, and the exact transportation
//! optimum from [`p2p_netflow`] provides an independent ground truth.
//!
//! # Examples
//!
//! ```
//! use p2p_core::{WelfareInstance, engine::SyncAuction, AuctionConfig};
//! use p2p_types::{PeerId, RequestId, ChunkId, VideoId, Valuation, Cost};
//!
//! let mut b = WelfareInstance::builder();
//! let u0 = b.add_provider(PeerId::new(10), 1);
//! let u1 = b.add_provider(PeerId::new(11), 1);
//! let chunk = ChunkId::new(VideoId::new(0), 0);
//! let r0 = b.add_request(RequestId::new(PeerId::new(0), chunk));
//! b.add_edge(r0, u0, Valuation::new(5.0), Cost::new(1.0)).unwrap();
//! b.add_edge(r0, u1, Valuation::new(5.0), Cost::new(4.0)).unwrap();
//! let instance = b.build().unwrap();
//!
//! let outcome = SyncAuction::new(AuctionConfig::paper()).run(&instance).unwrap();
//! assert!(outcome.converged);
//! // The cheap provider wins the request.
//! assert_eq!(outcome.assignment.provider_of(&instance, r0), Some(u0));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![cfg_attr(feature = "portable-simd", feature(portable_simd))]

pub mod auctioneer;
pub mod bertsekas;
pub mod bidder;
pub mod codec;
pub mod csr;
pub mod diff;
pub mod dist;
pub mod engine;
pub mod instance;
pub mod messages;
pub mod protocol;
pub mod shard;
pub mod solution;
pub mod strategic;
pub mod swarm;
pub mod verify;

mod ordf64;

pub use bidder::{BidDecision, EdgeView};
pub use codec::{decode_msg, encode_msg, MAX_FRAME_LEN, WIRE_VERSION};
pub use csr::{BidKernel, CsrBuilder, CsrInstance, FlatAuction, FlatOutcome, WorkerSpawner};
pub use diff::{InstanceDiff, InstancePatch};
pub use engine::{AuctionConfig, AuctionOutcome, EpsilonScaling, SyncAuction};
pub use instance::{EdgeSpec, InstanceBuilder, ProviderSpec, RequestSpec, WelfareInstance};
pub use p2p_metrics::{AuctionProbe, CountingProbe, EngineReport, NoProbe};
pub use p2p_sim::derive_seed;
pub use protocol::{AuctioneerNode, BidReply, BidderNode, BidderPhase, LearnPolicy};
pub use shard::{available_cores, ShardCount, ShardedAuction};
pub use solution::{Assignment, DualSolution};
pub use swarm::{FaultStats, NetworkModel, SwarmAuction, SwarmConfig, SwarmOutcome};
pub use verify::{verify_optimality, OptimalityReport};

pub(crate) use ordf64::OrdF64;
