//! The per-slot welfare maximization instance (problem (1) of the paper).

use p2p_netflow::TransportationProblem;
use p2p_types::{Bandwidth, Cost, P2pError, PeerId, RequestId, Utility, Valuation};
use serde::{Deserialize, Serialize};

/// Index of a provider within a [`WelfareInstance`].
pub type ProviderIdx = usize;
/// Index of a request within a [`WelfareInstance`].
pub type RequestIdx = usize;

/// One upstream peer `u` offering `B(u)` upload-bandwidth units.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ProviderSpec {
    /// The provider's peer id (`I_u`).
    pub peer: PeerId,
    /// Upload capacity `B(u)` in chunks per slot.
    pub capacity: Bandwidth,
}

/// One candidate edge: request → provider with the welfare weight
/// `v^{(c)}(d) − w_{u→d}`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EdgeSpec {
    /// Index of the provider (within the instance) that caches the chunk.
    pub provider: ProviderIdx,
    /// The requester's valuation `v^{(c)}(d)`.
    pub valuation: Valuation,
    /// The network cost `w_{u→d}`.
    pub cost: Cost,
}

impl EdgeSpec {
    /// The edge's welfare weight `v − w`.
    pub fn utility(&self) -> Utility {
        self.valuation - self.cost
    }
}

/// One download request `(I_d, c)` with its candidate providers
/// `N^{(c)}(d)` (neighbors caching chunk `c`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RequestSpec {
    /// The request identity.
    pub id: RequestId,
    /// Candidate edges, one per neighbor that caches the chunk.
    pub edges: Vec<EdgeSpec>,
}

/// A complete single-slot instance of the social welfare maximization
/// problem: providers with capacities, requests with candidate edges.
///
/// Construct through [`WelfareInstance::builder`], which validates edge
/// indices (C-VALIDATE).
///
/// # Examples
///
/// ```
/// use p2p_core::WelfareInstance;
/// use p2p_types::{PeerId, RequestId, ChunkId, VideoId, Valuation, Cost};
///
/// let mut b = WelfareInstance::builder();
/// let u = b.add_provider(PeerId::new(9), 2);
/// let r = b.add_request(RequestId::new(PeerId::new(0), ChunkId::new(VideoId::new(0), 0)));
/// b.add_edge(r, u, Valuation::new(3.0), Cost::new(1.0)).unwrap();
/// let inst = b.build().unwrap();
/// assert_eq!(inst.provider_count(), 1);
/// assert_eq!(inst.request_count(), 1);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WelfareInstance {
    providers: Vec<ProviderSpec>,
    requests: Vec<RequestSpec>,
}

impl WelfareInstance {
    /// Starts building an instance.
    pub fn builder() -> InstanceBuilder {
        InstanceBuilder::default()
    }

    /// Number of providers.
    pub fn provider_count(&self) -> usize {
        self.providers.len()
    }

    /// Number of requests.
    pub fn request_count(&self) -> usize {
        self.requests.len()
    }

    /// Total number of candidate edges.
    pub fn edge_count(&self) -> usize {
        self.requests.iter().map(|r| r.edges.len()).sum()
    }

    /// One provider by index.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    pub fn provider(&self, idx: ProviderIdx) -> &ProviderSpec {
        &self.providers[idx]
    }

    /// One request by index.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    pub fn request(&self, idx: RequestIdx) -> &RequestSpec {
        &self.requests[idx]
    }

    /// All providers.
    pub fn providers(&self) -> &[ProviderSpec] {
        &self.providers
    }

    /// All requests.
    pub fn requests(&self) -> &[RequestSpec] {
        &self.requests
    }

    /// Total upload capacity across providers.
    pub fn total_capacity(&self) -> Bandwidth {
        self.providers.iter().map(|p| p.capacity).sum()
    }

    /// Converts to the equivalent transportation problem (profits
    /// `v − w`), for exact solving via [`p2p_netflow`].
    pub fn to_transportation(&self) -> TransportationProblem {
        let caps = self.providers.iter().map(|p| p.capacity.chunks_per_slot()).collect();
        let edges = self
            .requests
            .iter()
            .map(|r| r.edges.iter().map(|e| (e.provider, e.utility().get())).collect::<Vec<_>>())
            .collect();
        TransportationProblem::new(caps, edges)
            .expect("builder-validated instance cannot produce out-of-range edges")
    }

    /// The exact optimal social welfare (ground truth via min-cost flow).
    ///
    /// This runs an exact solver in `O(R · E)`-ish time; intended for tests,
    /// verification and ablation benches, not the per-slot hot path.
    pub fn optimal_welfare(&self) -> Utility {
        let sol = p2p_netflow::solve_max_profit(&self.to_transportation())
            .expect("valid instance solves");
        Utility::new(sol.total_profit)
    }
}

/// Incremental builder for [`WelfareInstance`].
#[derive(Debug, Clone, Default)]
pub struct InstanceBuilder {
    providers: Vec<ProviderSpec>,
    requests: Vec<RequestSpec>,
}

impl InstanceBuilder {
    /// Adds a provider with `capacity` chunks-per-slot; returns its index.
    pub fn add_provider(&mut self, peer: PeerId, capacity: u32) -> ProviderIdx {
        self.providers.push(ProviderSpec { peer, capacity: Bandwidth::new(capacity) });
        self.providers.len() - 1
    }

    /// Adds a request with no edges yet; returns its index.
    pub fn add_request(&mut self, id: RequestId) -> RequestIdx {
        self.requests.push(RequestSpec { id, edges: Vec::new() });
        self.requests.len() - 1
    }

    /// Adds a candidate edge from `request` to `provider`.
    ///
    /// # Errors
    ///
    /// Returns [`P2pError::MalformedInstance`] if either index is out of
    /// range or the edge duplicates an existing (request, provider) pair —
    /// a request has at most one edge per neighbor — and
    /// [`P2pError::NonFiniteUtility`] if the welfare weight `v − w`
    /// overflows to infinity (finite `valuation` and `cost` do not
    /// guarantee a finite difference): a non-finite utility would flow
    /// into the bidders' `φ` comparisons and the kernel's max-reduction
    /// with an undefined winner, so it is rejected at build time.
    pub fn add_edge(
        &mut self,
        request: RequestIdx,
        provider: ProviderIdx,
        valuation: Valuation,
        cost: Cost,
    ) -> Result<(), P2pError> {
        if provider >= self.providers.len() {
            return Err(P2pError::MalformedInstance(format!(
                "provider index {provider} out of range ({} providers)",
                self.providers.len()
            )));
        }
        let Some(req) = self.requests.get_mut(request) else {
            return Err(P2pError::MalformedInstance(format!(
                "request index {request} out of range ({} requests)",
                self.requests.len()
            )));
        };
        if req.edges.iter().any(|e| e.provider == provider) {
            return Err(P2pError::MalformedInstance(format!(
                "duplicate edge request {request} -> provider {provider}"
            )));
        }
        // Raw difference, not `EdgeSpec::utility` — the unit type's
        // constructor asserts finiteness, and this must be an error, not a
        // panic.
        let utility = valuation.get() - cost.get();
        if !utility.is_finite() {
            return Err(P2pError::NonFiniteUtility {
                request: request as u32,
                provider: provider as u32,
                utility,
            });
        }
        req.edges.push(EdgeSpec { provider, valuation, cost });
        Ok(())
    }

    /// Finalizes the instance.
    ///
    /// # Errors
    ///
    /// Currently infallible for builder-constructed data, but returns
    /// `Result` to allow future invariants without a breaking change.
    pub fn build(self) -> Result<WelfareInstance, P2pError> {
        Ok(WelfareInstance { providers: self.providers, requests: self.requests })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use p2p_types::{ChunkId, VideoId};

    fn rid(d: u32, c: u32) -> RequestId {
        RequestId::new(PeerId::new(d), ChunkId::new(VideoId::new(0), c))
    }

    #[test]
    fn builder_roundtrip() {
        let mut b = WelfareInstance::builder();
        let u0 = b.add_provider(PeerId::new(100), 3);
        let u1 = b.add_provider(PeerId::new(101), 1);
        let r0 = b.add_request(rid(0, 0));
        let r1 = b.add_request(rid(0, 1));
        b.add_edge(r0, u0, Valuation::new(2.0), Cost::new(0.5)).unwrap();
        b.add_edge(r0, u1, Valuation::new(2.0), Cost::new(1.5)).unwrap();
        b.add_edge(r1, u0, Valuation::new(1.0), Cost::new(0.5)).unwrap();
        let inst = b.build().unwrap();
        assert_eq!(inst.provider_count(), 2);
        assert_eq!(inst.request_count(), 2);
        assert_eq!(inst.edge_count(), 3);
        assert_eq!(inst.total_capacity().chunks_per_slot(), 4);
        assert_eq!(inst.provider(0).peer, PeerId::new(100));
        assert_eq!(inst.request(1).id, rid(0, 1));
    }

    #[test]
    fn edge_utility() {
        let e = EdgeSpec { provider: 0, valuation: Valuation::new(8.0), cost: Cost::new(10.0) };
        assert_eq!(e.utility(), Utility::new(-2.0));
    }

    #[test]
    fn out_of_range_edges_rejected() {
        let mut b = WelfareInstance::builder();
        let r = b.add_request(rid(0, 0));
        assert!(b.add_edge(r, 0, Valuation::new(1.0), Cost::new(0.0)).is_err());
        let mut b = WelfareInstance::builder();
        let u = b.add_provider(PeerId::new(1), 1);
        assert!(b.add_edge(7, u, Valuation::new(1.0), Cost::new(0.0)).is_err());
    }

    #[test]
    fn duplicate_edges_rejected() {
        let mut b = WelfareInstance::builder();
        let u = b.add_provider(PeerId::new(1), 1);
        let r = b.add_request(rid(0, 0));
        b.add_edge(r, u, Valuation::new(1.0), Cost::new(0.0)).unwrap();
        assert!(b.add_edge(r, u, Valuation::new(2.0), Cost::new(0.0)).is_err());
    }

    #[test]
    fn non_finite_utilities_rejected() {
        // Finite valuation and cost whose difference overflows to +∞ — the
        // one non-finite `v − w` the unit types cannot catch at
        // construction time.
        let mut b = WelfareInstance::builder();
        let u = b.add_provider(PeerId::new(1), 1);
        let r = b.add_request(rid(0, 0));
        let err = b.add_edge(r, u, Valuation::new(f64::MAX), Cost::new(f64::MIN)).unwrap_err();
        assert!(matches!(err, P2pError::NonFiniteUtility { request: 0, provider: 0, .. }), "{err}");
        // The rejected edge was not recorded; a finite one still lands.
        b.add_edge(r, u, Valuation::new(1.0), Cost::new(0.25)).unwrap();
        let inst = b.build().unwrap();
        assert_eq!(inst.edge_count(), 1);
        assert_eq!(inst.request(0).edges[0].utility(), Utility::new(0.75));
    }

    #[test]
    fn transportation_conversion_preserves_shape() {
        let mut b = WelfareInstance::builder();
        let u = b.add_provider(PeerId::new(1), 5);
        let r = b.add_request(rid(0, 0));
        b.add_edge(r, u, Valuation::new(4.0), Cost::new(1.0)).unwrap();
        let inst = b.build().unwrap();
        let tp = inst.to_transportation();
        assert_eq!(tp.provider_count(), 1);
        assert_eq!(tp.request_count(), 1);
        assert_eq!(tp.capacity(0), 5);
        let (p, profit) = tp.request_edges(0)[0];
        assert_eq!(p, 0);
        assert!((profit - 3.0).abs() < 1e-12);
    }

    #[test]
    fn optimal_welfare_on_tiny_instance() {
        let mut b = WelfareInstance::builder();
        let u = b.add_provider(PeerId::new(1), 1);
        let r0 = b.add_request(rid(0, 0));
        let r1 = b.add_request(rid(1, 0));
        b.add_edge(r0, u, Valuation::new(5.0), Cost::new(1.0)).unwrap();
        b.add_edge(r1, u, Valuation::new(4.0), Cost::new(1.0)).unwrap();
        let inst = b.build().unwrap();
        assert_eq!(inst.optimal_welfare(), Utility::new(4.0));
    }

    #[test]
    fn empty_instance_is_valid() {
        let inst = WelfareInstance::builder().build().unwrap();
        assert_eq!(inst.provider_count(), 0);
        assert_eq!(inst.request_count(), 0);
        assert_eq!(inst.optimal_welfare(), Utility::ZERO);
    }
}
