//! The auctioneer side: bandwidth allocation at an upstream peer.
//!
//! "Bandwidth Allocation at Peer u" (Sec. IV-B): peer `u` maintains an
//! assignment set of at most `B(u)` winning requests. A bid `b ≤ λ_u` is
//! rejected; otherwise it is admitted, evicting the lowest bid when the set
//! is full; whenever the set is full, `λ_u` equals the smallest admitted
//! bid and the new price is announced to the neighbors.

use crate::instance::RequestIdx;
use crate::OrdF64;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Result of offering a bid to an [`Auctioneer`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum BidOutcome {
    /// The bid did not exceed the current price (stale knowledge at the
    /// bidder); the current price is returned so the bidder can retry.
    Rejected {
        /// The auctioneer's current price `λ_u`.
        price: f64,
    },
    /// The bid was admitted to the assignment set.
    Accepted {
        /// A previously admitted request that was evicted to make room.
        evicted: Option<RequestIdx>,
        /// The new price, if admission changed it (set became/stayed full).
        new_price: Option<f64>,
    },
}

/// Auctioneer state machine for one provider.
///
/// # Examples
///
/// ```
/// use p2p_core::auctioneer::{Auctioneer, BidOutcome};
///
/// let mut a = Auctioneer::new(1);
/// assert_eq!(a.price(), 0.0);
/// // First bid fills the single unit: price rises to the smallest (only) bid.
/// assert_eq!(a.handle_bid(0, 2.0), BidOutcome::Accepted { evicted: None, new_price: Some(2.0) });
/// // A higher bid evicts request 0 and lifts the price.
/// assert_eq!(a.handle_bid(1, 3.0), BidOutcome::Accepted { evicted: Some(0), new_price: Some(3.0) });
/// // A bid at or below the price is rejected.
/// assert_eq!(a.handle_bid(2, 3.0), BidOutcome::Rejected { price: 3.0 });
/// ```
#[derive(Debug, Clone)]
pub struct Auctioneer {
    capacity: u32,
    price: f64,
    /// Min-heap of (bid, admission sequence, request): the root is the
    /// eviction candidate. FIFO tie-break on equal bids keeps engines
    /// deterministic.
    set: BinaryHeap<Reverse<(OrdF64, u64, RequestIdx)>>,
    seq: u64,
}

impl Auctioneer {
    /// Creates an auctioneer with `capacity` bandwidth units at price 0.
    pub fn new(capacity: u32) -> Self {
        Auctioneer { capacity, price: 0.0, set: BinaryHeap::new(), seq: 0 }
    }

    /// Creates an auctioneer warm-started at `price` with an empty set —
    /// used by ε-scaling phases, which carry prices (not assignments)
    /// across phases.
    ///
    /// # Panics
    ///
    /// Panics if `price` is negative or not finite.
    pub fn with_price(capacity: u32, price: f64) -> Self {
        assert!(price.is_finite() && price >= 0.0, "price must be finite and non-negative");
        Auctioneer { capacity, price, set: BinaryHeap::new(), seq: 0 }
    }

    /// The capacity `B(u)`.
    pub fn capacity(&self) -> u32 {
        self.capacity
    }

    /// The current unit bandwidth price `λ_u`.
    pub fn price(&self) -> f64 {
        self.price
    }

    /// Number of admitted requests.
    pub fn assigned_len(&self) -> usize {
        self.set.len()
    }

    /// Whether every bandwidth unit is allocated.
    pub fn is_full(&self) -> bool {
        self.set.len() as u64 >= u64::from(self.capacity)
    }

    /// The admitted `(request, bid)` pairs, in arbitrary order.
    pub fn assigned(&self) -> impl Iterator<Item = (RequestIdx, f64)> + '_ {
        self.set.iter().map(|Reverse((bid, _, req))| (*req, bid.0))
    }

    /// Releases a previously admitted request (its downstream peer
    /// departed, Sec. IV-C). Returns the new price if the release changed
    /// it: freeing a unit re-opens competition, so the price drops back to
    /// zero when the set is no longer full — the one deliberate exception
    /// to price monotonicity, confined to departures.
    pub fn release(&mut self, request: RequestIdx) -> Option<f64> {
        let before = self.set.len();
        let mut entries: Vec<_> = std::mem::take(&mut self.set).into_vec();
        entries.retain(|Reverse((_, _, r))| *r != request);
        let removed = entries.len() < before;
        self.set = entries.into();
        if removed && !self.is_full() && self.price != 0.0 {
            self.price = 0.0;
            Some(0.0)
        } else {
            None
        }
    }

    /// Empties the assignment set (the auctioneer itself departs),
    /// returning the evicted requests.
    pub fn take_all(&mut self) -> Vec<RequestIdx> {
        let out = self.set.iter().map(|Reverse((_, _, r))| *r).collect();
        self.set.clear();
        out
    }

    /// Processes one bid per the paper's allocation rule.
    ///
    /// # Panics
    ///
    /// Panics if `amount` is not finite (bids derive from validated finite
    /// valuations/costs/prices).
    pub fn handle_bid(&mut self, request: RequestIdx, amount: f64) -> BidOutcome {
        assert!(amount.is_finite(), "bid must be finite");
        if self.capacity == 0 || amount <= self.price {
            return BidOutcome::Rejected { price: self.price };
        }
        let mut evicted = None;
        if self.is_full() {
            let Reverse((_, _, loser)) = self.set.pop().expect("full set is non-empty");
            evicted = Some(loser);
        }
        self.set.push(Reverse((OrdF64(amount), self.seq, request)));
        self.seq += 1;
        let mut new_price = None;
        if self.is_full() {
            let Reverse((min_bid, _, _)) = self.set.peek().expect("set is non-empty");
            if min_bid.0 != self.price {
                self.price = min_bid.0;
                new_price = Some(self.price);
            }
        }
        BidOutcome::Accepted { evicted, new_price }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accepts_until_full_without_price_change() {
        let mut a = Auctioneer::new(3);
        assert_eq!(a.handle_bid(0, 5.0), BidOutcome::Accepted { evicted: None, new_price: None });
        assert_eq!(a.handle_bid(1, 4.0), BidOutcome::Accepted { evicted: None, new_price: None });
        assert_eq!(a.price(), 0.0);
        // Third bid fills the set: price = min(5,4,2) = 2.
        assert_eq!(
            a.handle_bid(2, 2.0),
            BidOutcome::Accepted { evicted: None, new_price: Some(2.0) }
        );
        assert!(a.is_full());
        assert_eq!(a.assigned_len(), 3);
    }

    #[test]
    fn eviction_removes_lowest_bid() {
        let mut a = Auctioneer::new(2);
        a.handle_bid(0, 1.0);
        a.handle_bid(1, 3.0);
        assert_eq!(a.price(), 1.0);
        let out = a.handle_bid(2, 2.0);
        assert_eq!(out, BidOutcome::Accepted { evicted: Some(0), new_price: Some(2.0) });
        let mut winners: Vec<_> = a.assigned().map(|(r, _)| r).collect();
        winners.sort_unstable();
        assert_eq!(winners, vec![1, 2]);
    }

    #[test]
    fn rejects_bids_at_or_below_price() {
        let mut a = Auctioneer::new(1);
        a.handle_bid(0, 2.0);
        assert_eq!(a.handle_bid(1, 1.5), BidOutcome::Rejected { price: 2.0 });
        assert_eq!(a.handle_bid(1, 2.0), BidOutcome::Rejected { price: 2.0 });
        // Strictly higher wins.
        assert!(matches!(a.handle_bid(1, 2.1), BidOutcome::Accepted { evicted: Some(0), .. }));
    }

    #[test]
    fn price_is_monotone_nondecreasing() {
        let mut a = Auctioneer::new(2);
        let mut last = a.price();
        for (req, bid) in [(0, 1.0), (1, 0.5), (2, 0.8), (3, 2.0), (4, 3.0), (5, 2.5)] {
            let _ = a.handle_bid(req, bid);
            assert!(a.price() >= last, "price decreased");
            last = a.price();
        }
    }

    #[test]
    fn zero_capacity_rejects_everything() {
        let mut a = Auctioneer::new(0);
        assert_eq!(a.handle_bid(0, 100.0), BidOutcome::Rejected { price: 0.0 });
        assert_eq!(a.assigned_len(), 0);
    }

    #[test]
    fn fifo_eviction_on_equal_bids() {
        let mut a = Auctioneer::new(2);
        a.handle_bid(10, 1.0);
        a.handle_bid(20, 1.0);
        // Equal lowest bids: the earliest admitted (10) is evicted first.
        let out = a.handle_bid(30, 1.5);
        assert!(matches!(out, BidOutcome::Accepted { evicted: Some(10), .. }));
    }

    #[test]
    fn unchanged_price_not_reannounced() {
        let mut a = Auctioneer::new(2);
        a.handle_bid(0, 1.0);
        a.handle_bid(1, 1.0);
        assert_eq!(a.price(), 1.0);
        // Evicting one of the 1.0 bids with a 2.0 bid leaves min = 1.0:
        // no price announcement.
        let out = a.handle_bid(2, 2.0);
        assert_eq!(out, BidOutcome::Accepted { evicted: Some(0), new_price: None });
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn non_finite_bid_panics() {
        let mut a = Auctioneer::new(1);
        let _ = a.handle_bid(0, f64::NAN);
    }

    #[test]
    fn release_frees_a_unit_and_resets_price() {
        let mut a = Auctioneer::new(2);
        a.handle_bid(0, 1.0);
        a.handle_bid(1, 2.0);
        assert_eq!(a.price(), 1.0);
        assert_eq!(a.release(0), Some(0.0));
        assert_eq!(a.price(), 0.0);
        assert_eq!(a.assigned_len(), 1);
        // Releasing an unknown request is a no-op.
        assert_eq!(a.release(42), None);
        assert_eq!(a.assigned_len(), 1);
    }

    #[test]
    fn release_with_zero_price_reports_no_change() {
        let mut a = Auctioneer::new(3);
        a.handle_bid(0, 1.0);
        assert_eq!(a.price(), 0.0);
        assert_eq!(a.release(0), None);
        assert_eq!(a.assigned_len(), 0);
    }

    #[test]
    fn take_all_empties_the_set() {
        let mut a = Auctioneer::new(2);
        a.handle_bid(7, 1.0);
        a.handle_bid(9, 2.0);
        let mut evicted = a.take_all();
        evicted.sort_unstable();
        assert_eq!(evicted, vec![7, 9]);
        assert_eq!(a.assigned_len(), 0);
        // Fresh bids are admitted again.
        assert!(matches!(a.handle_bid(1, 3.0), BidOutcome::Accepted { .. }));
    }
}
