//! The classic Bertsekas auction for the assignment problem, plus the
//! paper's Fig. 1 conversion from the transportation form.
//!
//! The paper reduces its welfare problem to a transportation problem and
//! notes (Sec. IV-A) that "the transportation problem can be converted to an
//! assignment problem by replacing each source (sink) with α (β) copies of
//! persons (objects)": every provider `u` is replaced by `B(u)` identical
//! bandwidth-unit objects. This module implements both the conversion and
//! the textbook auction (Bertsekas 1988) over the expanded instance, giving
//! a third independent solver to cross-check the distributed auction and
//! the min-cost-flow ground truth.

use crate::instance::{ProviderIdx, WelfareInstance};
use crate::solution::Assignment;
use p2p_types::P2pError;
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// An assignment problem: `persons` bid for distinct `objects`; each person
/// consumes at most one object and vice versa.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AssignmentProblem {
    object_count: usize,
    /// Per person: candidate `(object, value)` pairs.
    values: Vec<Vec<(usize, f64)>>,
}

impl AssignmentProblem {
    /// Creates an assignment problem.
    ///
    /// # Errors
    ///
    /// Returns [`P2pError::MalformedInstance`] if an edge references an
    /// object `>= object_count` or a value is non-finite.
    pub fn new(object_count: usize, values: Vec<Vec<(usize, f64)>>) -> Result<Self, P2pError> {
        for (i, person) in values.iter().enumerate() {
            for &(o, v) in person {
                if o >= object_count {
                    return Err(P2pError::MalformedInstance(format!(
                        "person {i} references object {o} of {object_count}"
                    )));
                }
                if !v.is_finite() {
                    return Err(P2pError::MalformedInstance(format!(
                        "person {i} has non-finite value for object {o}"
                    )));
                }
            }
        }
        Ok(AssignmentProblem { object_count, values })
    }

    /// Number of objects.
    pub fn object_count(&self) -> usize {
        self.object_count
    }

    /// Number of persons.
    pub fn person_count(&self) -> usize {
        self.values.len()
    }
}

/// Result of the classic auction.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AssignmentAuctionResult {
    /// Per person: the object won, if any.
    pub matches: Vec<Option<usize>>,
    /// Final per-object prices.
    pub prices: Vec<f64>,
    /// Bids processed until quiescence.
    pub iterations: u64,
    /// Total value of the matching.
    pub total_value: f64,
}

/// Runs the forward auction with increment `epsilon` (> 0 guarantees
/// termination; the result is within `persons · epsilon` of optimal).
///
/// # Errors
///
/// Returns [`P2pError::AuctionDiverged`] if the iteration cap is exceeded.
///
/// # Examples
///
/// ```
/// use p2p_core::bertsekas::{AssignmentProblem, solve_assignment_auction};
///
/// // Person 0 values object 0 higher; person 1 only wants object 0.
/// let p = AssignmentProblem::new(2, vec![
///     vec![(0, 10.0), (1, 8.0)],
///     vec![(0, 9.0)],
/// ]).unwrap();
/// let r = solve_assignment_auction(&p, 0.01).unwrap();
/// // Optimal matching: person 0 → object 1, person 1 → object 0 (17)
/// assert_eq!(r.matches, vec![Some(1), Some(0)]);
/// assert!(r.total_value >= 17.0 - 2.0 * 0.01);
/// ```
pub fn solve_assignment_auction(
    problem: &AssignmentProblem,
    epsilon: f64,
) -> Result<AssignmentAuctionResult, P2pError> {
    let n_objects = problem.object_count;
    let mut prices = vec![0.0_f64; n_objects];
    let mut owner: Vec<Option<usize>> = vec![None; n_objects];
    let mut matches: Vec<Option<usize>> = vec![None; problem.person_count()];
    let mut queue: VecDeque<usize> = (0..problem.person_count()).collect();
    let mut iterations = 0u64;
    let max_iterations = 10_000_000u64;

    while let Some(person) = queue.pop_front() {
        iterations += 1;
        if iterations > max_iterations {
            return Err(P2pError::AuctionDiverged { iterations });
        }
        let candidates = &problem.values[person];
        if candidates.is_empty() {
            continue;
        }
        // Best and second-best net value at current prices.
        let mut best: Option<(usize, f64)> = None; // (candidate idx, net)
        let mut second = f64::NEG_INFINITY;
        for (k, &(obj, value)) in candidates.iter().enumerate() {
            let net = value - prices[obj];
            match best {
                Some((_, b)) if net <= b => second = second.max(net),
                Some((_, b)) => {
                    second = b;
                    best = Some((k, net));
                }
                None => best = Some((k, net)),
            }
        }
        let (k, best_net) = best.expect("non-empty candidates");
        if best_net < 0.0 {
            continue; // participation constraint: staying out beats overpaying
        }
        let (obj, value) = candidates[k];
        let reference = second.max(0.0);
        let bid = value - reference + epsilon; // = price + (best−second) + ε
        if bid <= prices[obj] {
            continue; // zero margin at ε = 0: the paper's wait rule
        }
        prices[obj] = bid;
        if let Some(previous) = owner[obj].replace(person) {
            matches[previous] = None;
            queue.push_back(previous);
        }
        matches[person] = Some(obj);
    }

    let total_value = matches
        .iter()
        .enumerate()
        .filter_map(|(person, m)| {
            m.map(|obj| {
                problem.values[person]
                    .iter()
                    .find(|&&(o, _)| o == obj)
                    .map(|&(_, v)| v)
                    .expect("matched object is a candidate")
            })
        })
        .sum();
    Ok(AssignmentAuctionResult { matches, prices, iterations, total_value })
}

/// The Fig. 1 expansion: a [`WelfareInstance`] as an [`AssignmentProblem`]
/// where provider `u` becomes `B(u)` identical bandwidth-unit objects, plus
/// the object → provider mapping.
pub fn expand_to_assignment(instance: &WelfareInstance) -> (AssignmentProblem, Vec<ProviderIdx>) {
    let mut object_of_provider: Vec<Vec<usize>> = Vec::with_capacity(instance.provider_count());
    let mut object_provider = Vec::new();
    for (u, p) in instance.providers().iter().enumerate() {
        let units = (0..p.capacity.chunks_per_slot())
            .map(|_| {
                object_provider.push(u);
                object_provider.len() - 1
            })
            .collect();
        object_of_provider.push(units);
    }
    let values = instance
        .requests()
        .iter()
        .map(|r| {
            r.edges
                .iter()
                .flat_map(|e| {
                    let utility = e.utility().get();
                    object_of_provider[e.provider].iter().map(move |&obj| (obj, utility))
                })
                .collect()
        })
        .collect();
    let problem = AssignmentProblem::new(object_provider.len(), values)
        .expect("expansion preserves validity");
    (problem, object_provider)
}

/// Solves a [`WelfareInstance`] through the Fig. 1 expansion and the classic
/// auction, mapping the matching back to a per-request [`Assignment`].
///
/// # Errors
///
/// Returns [`P2pError::AuctionDiverged`] if the expanded auction exceeds its
/// iteration cap.
pub fn solve_via_expansion(
    instance: &WelfareInstance,
    epsilon: f64,
) -> Result<Assignment, P2pError> {
    let (problem, object_provider) = expand_to_assignment(instance);
    let result = solve_assignment_auction(&problem, epsilon)?;
    let choices = instance
        .requests()
        .iter()
        .zip(&result.matches)
        .map(|(req, m)| {
            m.map(|obj| {
                let provider = object_provider[obj];
                req.edges
                    .iter()
                    .position(|e| e.provider == provider)
                    .expect("matched object derives from an edge")
            })
        })
        .collect();
    Ok(Assignment::new(choices))
}

#[cfg(test)]
mod tests {
    use super::*;
    use p2p_types::{ChunkId, Cost, PeerId, RequestId, Valuation, VideoId};

    fn rid(d: u32, c: u32) -> RequestId {
        RequestId::new(PeerId::new(d), ChunkId::new(VideoId::new(0), c))
    }

    #[test]
    fn classic_auction_solves_diagonal_instance() {
        // Person i strongly prefers object i.
        let p = AssignmentProblem::new(
            3,
            vec![
                vec![(0, 10.0), (1, 1.0), (2, 1.0)],
                vec![(0, 1.0), (1, 10.0), (2, 1.0)],
                vec![(0, 1.0), (1, 1.0), (2, 10.0)],
            ],
        )
        .unwrap();
        let r = solve_assignment_auction(&p, 0.01).unwrap();
        assert_eq!(r.matches, vec![Some(0), Some(1), Some(2)]);
        assert!((r.total_value - 30.0).abs() < 1e-9);
    }

    #[test]
    fn contested_object_goes_to_higher_value_person() {
        let p = AssignmentProblem::new(1, vec![vec![(0, 5.0)], vec![(0, 7.0)]]).unwrap();
        let r = solve_assignment_auction(&p, 0.01).unwrap();
        assert_eq!(r.matches, vec![None, Some(0)]);
        // Price must have been bid up beyond the loser's value minus ε.
        assert!(r.prices[0] >= 5.0 - 0.01);
    }

    #[test]
    fn epsilon_bound_holds_on_random_instances() {
        use rand::Rng;
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(11);
        for _ in 0..30 {
            let objects = rng.gen_range(1..6);
            let persons = rng.gen_range(1..6);
            let eps = 0.01;
            let mut values: Vec<Vec<(usize, f64)>> = Vec::with_capacity(persons);
            for _ in 0..persons {
                let mut edges = Vec::new();
                for o in 0..objects {
                    if rng.gen_bool(0.8) {
                        edges.push((o, rng.gen_range(0.0..10.0)));
                    }
                }
                values.push(edges);
            }
            let p = AssignmentProblem::new(objects, values.clone()).unwrap();
            let r = solve_assignment_auction(&p, eps).unwrap();

            // Exact optimum via the netflow solver (capacity-1 providers).
            let tp = p2p_netflow::TransportationProblem::new(vec![1; objects], values).unwrap();
            let exact = p2p_netflow::solve_max_profit(&tp).unwrap();
            assert!(
                r.total_value >= exact.total_profit - persons as f64 * eps - 1e-9,
                "auction {} vs exact {}",
                r.total_value,
                exact.total_profit
            );
        }
    }

    #[test]
    fn expansion_creates_one_object_per_bandwidth_unit() {
        let mut b = WelfareInstance::builder();
        let u0 = b.add_provider(PeerId::new(1), 3);
        let u1 = b.add_provider(PeerId::new(2), 2);
        let r = b.add_request(rid(0, 0));
        b.add_edge(r, u0, Valuation::new(2.0), Cost::new(1.0)).unwrap();
        b.add_edge(r, u1, Valuation::new(2.0), Cost::new(0.5)).unwrap();
        let inst = b.build().unwrap();
        let (problem, object_provider) = expand_to_assignment(&inst);
        assert_eq!(problem.object_count(), 5);
        assert_eq!(object_provider, vec![0, 0, 0, 1, 1]);
        // The single request can bid on all five objects.
        assert_eq!(problem.person_count(), 1);
    }

    #[test]
    fn expansion_solution_matches_exact_optimum() {
        let mut b = WelfareInstance::builder();
        let u0 = b.add_provider(PeerId::new(1), 1);
        let u1 = b.add_provider(PeerId::new(2), 2);
        let r0 = b.add_request(rid(0, 0));
        let r1 = b.add_request(rid(1, 0));
        let r2 = b.add_request(rid(2, 0));
        b.add_edge(r0, u0, Valuation::new(6.0), Cost::new(0.5)).unwrap();
        b.add_edge(r0, u1, Valuation::new(6.0), Cost::new(3.0)).unwrap();
        b.add_edge(r1, u0, Valuation::new(4.0), Cost::new(0.25)).unwrap();
        b.add_edge(r1, u1, Valuation::new(4.0), Cost::new(2.0)).unwrap();
        b.add_edge(r2, u1, Valuation::new(2.0), Cost::new(1.0)).unwrap();
        let inst = b.build().unwrap();
        let eps = 1e-4;
        let a = solve_via_expansion(&inst, eps).unwrap();
        assert!(a.validate(&inst).is_ok());
        let exact = inst.optimal_welfare().get();
        assert!(a.welfare(&inst).get() >= exact - 3.0 * eps);
    }

    #[test]
    fn malformed_problems_rejected() {
        assert!(AssignmentProblem::new(1, vec![vec![(2, 1.0)]]).is_err());
        assert!(AssignmentProblem::new(1, vec![vec![(0, f64::NAN)]]).is_err());
    }

    #[test]
    fn person_with_no_candidates_stays_unmatched() {
        let p = AssignmentProblem::new(1, vec![vec![], vec![(0, 1.0)]]).unwrap();
        let r = solve_assignment_auction(&p, 0.01).unwrap();
        assert_eq!(r.matches, vec![None, Some(0)]);
    }
}
