//! Compact, versioned binary codec for the [`messages`](crate::messages)
//! bid/price protocol.
//!
//! Wire layout: every frame is a `u32` little-endian length prefix followed
//! by exactly that many payload bytes; a payload is
//! `[WIRE_VERSION, tag, fields...]`. Indices travel as `u64` LE (encoding
//! is therefore infallible on every platform) and prices as the raw
//! [`f64::to_bits`] LE image, so the roundtrip is bit-exact — including
//! `+∞` (the zero-capacity pin the engines use) and NaN payloads.
//!
//! Decoding is strict and total: truncated input yields
//! [`P2pError::WireTruncated`], a foreign version byte
//! [`P2pError::WireVersion`], and unknown tags, oversized frames or
//! trailing bytes [`P2pError::WireMalformed`]. No input panics, and a
//! successful decode implies the bytes were canonical: re-encoding the
//! decoded message reproduces the input exactly (property-tested in
//! `proptest_wire`).
//!
//! # Examples
//!
//! ```
//! use p2p_core::codec::{decode_msg, encode_msg};
//! use p2p_core::messages::AuctionMsg;
//!
//! let msg = AuctionMsg::Bid { request: 3, edge: 1, provider: 7, amount: 2.5 };
//! let bytes = encode_msg(&msg);
//! assert_eq!(decode_msg(&bytes).unwrap(), msg);
//! assert!(decode_msg(&bytes[..bytes.len() - 1]).is_err());
//! ```

use crate::messages::AuctionMsg;
use p2p_types::{P2pError, Result};

/// The wire protocol version this build encodes and accepts.
///
/// History: version 1 was the original per-request protocol; version 2
/// added the batched `PollBatch`/`ReplyBatch` control frames (one frame
/// per peer per sweep round). Decoding is strict-equality on the version
/// byte, so a version-2 tracker refuses version-1 peers (and vice versa)
/// with a typed [`P2pError::WireVersion`] instead of misparsing.
pub const WIRE_VERSION: u8 = 2;

/// Upper bound on a frame's payload length (16 MiB). A length prefix above
/// this is rejected before any allocation, so a corrupt or hostile peer
/// cannot make a reader balloon its memory.
pub const MAX_FRAME_LEN: usize = 1 << 24;

const TAG_BID: u8 = 1;
const TAG_ACCEPTED: u8 = 2;
const TAG_REJECTED: u8 = 3;
const TAG_EVICTED: u8 = 4;
const TAG_PRICE_UPDATE: u8 = 5;

/// Append-only byte sink with the codec's primitive encodings.
///
/// Encoding never fails: indices are widened to `u64` and floats are
/// written as their bit image, so there is no lossy or fallible step.
#[derive(Debug, Default, Clone)]
pub struct WireWriter {
    buf: Vec<u8>,
}

impl WireWriter {
    /// Empty writer.
    pub fn new() -> Self {
        WireWriter { buf: Vec::new() }
    }

    /// Empty writer with `capacity` bytes pre-reserved.
    pub fn with_capacity(capacity: usize) -> Self {
        WireWriter { buf: Vec::with_capacity(capacity) }
    }

    /// Appends a raw byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a `u32` little-endian.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `u64` little-endian.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `usize` widened to `u64` little-endian.
    pub fn put_index(&mut self, v: usize) {
        self.put_u64(v as u64);
    }

    /// Appends an `f64` as its exact bit image, little-endian.
    pub fn put_f64(&mut self, v: f64) {
        self.put_u64(v.to_bits());
    }

    /// Appends raw bytes verbatim.
    pub fn put_bytes(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been written yet.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Consumes the writer, returning the encoded bytes.
    pub fn into_vec(self) -> Vec<u8> {
        self.buf
    }
}

/// Cursor over received bytes with the codec's primitive decodings.
///
/// Every read is bounds-checked and returns
/// [`P2pError::WireTruncated`] instead of panicking when the input runs
/// out. Call [`finish`](WireReader::finish) after the last field to reject
/// trailing garbage, which is what makes a successful decode canonical.
#[derive(Debug, Clone)]
pub struct WireReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> WireReader<'a> {
    /// Reader positioned at the start of `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        WireReader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Takes the next `n` raw bytes.
    pub fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        if self.remaining() < n {
            return Err(P2pError::WireTruncated { expected: n, actual: self.remaining() });
        }
        let slice = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    /// Reads one byte.
    pub fn u8(&mut self) -> Result<u8> {
        Ok(self.take(1)?[0])
    }

    /// Reads a `u32` little-endian.
    pub fn u32(&mut self) -> Result<u32> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Reads a `u64` little-endian.
    pub fn u64(&mut self) -> Result<u64> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes([b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7]]))
    }

    /// Reads a `u64` little-endian and narrows it to `usize`.
    pub fn index(&mut self) -> Result<usize> {
        let v = self.u64()?;
        usize::try_from(v)
            .map_err(|_| P2pError::WireMalformed { reason: format!("index {v} exceeds usize") })
    }

    /// Reads an `f64` from its exact bit image, little-endian.
    pub fn f64(&mut self) -> Result<f64> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Asserts the input was fully consumed.
    pub fn finish(self) -> Result<()> {
        if self.remaining() != 0 {
            return Err(P2pError::WireMalformed {
                reason: format!("{} trailing bytes after a complete payload", self.remaining()),
            });
        }
        Ok(())
    }
}

/// Encodes one protocol message as a versioned payload (no length prefix).
pub fn encode_msg(msg: &AuctionMsg) -> Vec<u8> {
    let mut w = WireWriter::with_capacity(2 + 4 * 8);
    w.put_u8(WIRE_VERSION);
    match *msg {
        AuctionMsg::Bid { request, edge, provider, amount } => {
            w.put_u8(TAG_BID);
            w.put_index(request);
            w.put_index(edge);
            w.put_index(provider);
            w.put_f64(amount);
        }
        AuctionMsg::Accepted { request, provider } => {
            w.put_u8(TAG_ACCEPTED);
            w.put_index(request);
            w.put_index(provider);
        }
        AuctionMsg::Rejected { request, provider, price } => {
            w.put_u8(TAG_REJECTED);
            w.put_index(request);
            w.put_index(provider);
            w.put_f64(price);
        }
        AuctionMsg::Evicted { request, provider, price } => {
            w.put_u8(TAG_EVICTED);
            w.put_index(request);
            w.put_index(provider);
            w.put_f64(price);
        }
        AuctionMsg::PriceUpdate { listener, provider, price } => {
            w.put_u8(TAG_PRICE_UPDATE);
            w.put_index(listener);
            w.put_index(provider);
            w.put_f64(price);
        }
    }
    w.into_vec()
}

/// Decodes one protocol message from a versioned payload.
///
/// Strict: the payload must be exactly one message with no trailing bytes.
pub fn decode_msg(bytes: &[u8]) -> Result<AuctionMsg> {
    let mut r = WireReader::new(bytes);
    let version = r.u8()?;
    if version != WIRE_VERSION {
        return Err(P2pError::WireVersion { found: version, supported: WIRE_VERSION });
    }
    let tag = r.u8()?;
    let msg = match tag {
        TAG_BID => AuctionMsg::Bid {
            request: r.index()?,
            edge: r.index()?,
            provider: r.index()?,
            amount: r.f64()?,
        },
        TAG_ACCEPTED => AuctionMsg::Accepted { request: r.index()?, provider: r.index()? },
        TAG_REJECTED => {
            AuctionMsg::Rejected { request: r.index()?, provider: r.index()?, price: r.f64()? }
        }
        TAG_EVICTED => {
            AuctionMsg::Evicted { request: r.index()?, provider: r.index()?, price: r.f64()? }
        }
        TAG_PRICE_UPDATE => {
            AuctionMsg::PriceUpdate { listener: r.index()?, provider: r.index()?, price: r.f64()? }
        }
        other => {
            return Err(P2pError::WireMalformed { reason: format!("unknown message tag {other}") })
        }
    };
    r.finish()?;
    Ok(msg)
}

/// Wraps a payload in a `u32`-LE length-prefixed frame.
///
/// Empty and oversized payloads are rejected: a zero-length frame is
/// meaningless in this protocol (every payload starts with a version byte)
/// and anything above [`MAX_FRAME_LEN`] must not be emitted, mirroring the
/// reader-side guard in [`frame_len`].
pub fn frame(payload: &[u8]) -> Result<Vec<u8>> {
    frame_len_ok(payload.len())?;
    let mut out = Vec::with_capacity(4 + payload.len());
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(payload);
    Ok(out)
}

/// Validates a frame header and returns the payload length it announces.
///
/// Readers call this on the 4 prefix bytes before allocating, so a corrupt
/// length cannot trigger a giant read.
pub fn frame_len(header: [u8; 4]) -> Result<usize> {
    let len = u32::from_le_bytes(header) as usize;
    frame_len_ok(len)?;
    Ok(len)
}

fn frame_len_ok(len: usize) -> Result<()> {
    if len == 0 {
        return Err(P2pError::WireMalformed { reason: "zero-length frame".into() });
    }
    if len > MAX_FRAME_LEN {
        return Err(P2pError::WireMalformed {
            reason: format!("frame length {len} exceeds the {MAX_FRAME_LEN}-byte cap"),
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn samples() -> Vec<AuctionMsg> {
        vec![
            AuctionMsg::Bid { request: 0, edge: 2, provider: 5, amount: 3.25 },
            AuctionMsg::Bid { request: usize::MAX, edge: 0, provider: 1, amount: f64::INFINITY },
            AuctionMsg::Accepted { request: 7, provider: 0 },
            AuctionMsg::Rejected { request: 1, provider: 2, price: 0.1 + 0.2 },
            AuctionMsg::Evicted { request: 3, provider: 4, price: f64::MIN_POSITIVE },
            AuctionMsg::PriceUpdate { listener: 9, provider: 9, price: -0.0 },
        ]
    }

    #[test]
    fn roundtrip_is_exact_for_every_variant() {
        for msg in samples() {
            let bytes = encode_msg(&msg);
            assert_eq!(decode_msg(&bytes).unwrap(), msg);
            // Canonical: re-encoding reproduces the input bytes.
            assert_eq!(encode_msg(&decode_msg(&bytes).unwrap()), bytes);
        }
    }

    #[test]
    fn nan_amounts_roundtrip_bit_exactly() {
        let nan = f64::from_bits(0x7ff8_dead_beef_0001);
        let msg = AuctionMsg::Bid { request: 1, edge: 0, provider: 2, amount: nan };
        let bytes = encode_msg(&msg);
        match decode_msg(&bytes).unwrap() {
            AuctionMsg::Bid { amount, .. } => assert_eq!(amount.to_bits(), nan.to_bits()),
            other => panic!("wrong variant: {other:?}"),
        }
    }

    #[test]
    fn every_strict_prefix_is_truncated() {
        for msg in samples() {
            let bytes = encode_msg(&msg);
            for cut in 0..bytes.len() {
                assert!(decode_msg(&bytes[..cut]).is_err(), "prefix of length {cut} decoded");
            }
        }
    }

    #[test]
    fn foreign_version_is_rejected_with_its_number() {
        let mut bytes = encode_msg(&AuctionMsg::Accepted { request: 0, provider: 0 });
        bytes[0] = 9;
        assert_eq!(
            decode_msg(&bytes),
            Err(P2pError::WireVersion { found: 9, supported: WIRE_VERSION })
        );
    }

    /// The version-1 (pre-batching) protocol must be refused outright:
    /// a frame stamped with the old version decodes to a typed error
    /// naming both sides, never to a misparsed message.
    #[test]
    fn version_one_frames_are_rejected_after_the_batching_bump() {
        const { assert!(WIRE_VERSION > 1, "the batching release bumped the wire version") };
        let mut bytes = encode_msg(&AuctionMsg::Accepted { request: 0, provider: 0 });
        bytes[0] = 1;
        assert_eq!(
            decode_msg(&bytes),
            Err(P2pError::WireVersion { found: 1, supported: WIRE_VERSION })
        );
    }

    #[test]
    fn unknown_tag_and_trailing_bytes_are_malformed() {
        let mut bad_tag = encode_msg(&AuctionMsg::Accepted { request: 0, provider: 0 });
        bad_tag[1] = 77;
        assert!(matches!(decode_msg(&bad_tag), Err(P2pError::WireMalformed { .. })));

        let mut trailing = encode_msg(&AuctionMsg::Accepted { request: 0, provider: 0 });
        trailing.push(0);
        assert!(matches!(decode_msg(&trailing), Err(P2pError::WireMalformed { .. })));
    }

    #[test]
    fn frame_guards_zero_and_oversize_lengths() {
        assert!(frame(&[]).is_err());
        assert!(frame_len(0u32.to_le_bytes()).is_err());
        assert!(frame_len(u32::MAX.to_le_bytes()).is_err());
        let framed = frame(&[1, 2, 3]).unwrap();
        assert_eq!(frame_len([framed[0], framed[1], framed[2], framed[3]]).unwrap(), 3);
        assert_eq!(&framed[4..], &[1, 2, 3]);
    }
}
