//! Optimality verification: Theorem 1's complementary slackness conditions.
//!
//! The paper's appendix proves optimality by checking that on termination
//! the primal/dual pair satisfies the three complementary slackness (CS)
//! conditions of problems (1) and (5):
//!
//! 1. `λ_u > 0 ⇒ Σ a_{u→·} = B(u)` — a priced provider is fully allocated;
//! 2. `a_{u→d} > 0 ⇒ λ_u + η_d = v − w` — every winner is served at its
//!    best net utility;
//! 3. `η_d > 0 ⇒ Σ_u a_{u→d} = 1` — a request with positive achievable
//!    utility is served.
//!
//! Together with primal and dual feasibility these certify optimality by LP
//! duality (the paper omits integrality in the dual and recovers binary
//! optimal primal solutions — exactly what this checker confirms).

use crate::instance::WelfareInstance;
use crate::solution::{Assignment, DualSolution};
use serde::{Deserialize, Serialize};

/// A violated optimality condition.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[non_exhaustive]
pub enum Violation {
    /// Primal infeasibility (capacity or index violation).
    PrimalInfeasible(String),
    /// Dual infeasibility (constraint (6), (7) or (8)).
    DualInfeasible(String),
    /// CS condition 1 failed at a provider.
    UnsoldPricedCapacity {
        /// Provider index.
        provider: usize,
        /// Its price.
        lambda: f64,
        /// Units actually sold.
        sold: u32,
        /// Units available.
        capacity: u32,
    },
    /// CS condition 2 failed at a request (assigned off its argmax edge).
    AssignedBelowBest {
        /// Request index.
        request: usize,
        /// Net utility of the chosen edge.
        chosen: f64,
        /// Best achievable net utility.
        best: f64,
    },
    /// CS condition 3 failed (positive achievable utility but unassigned).
    ProfitableRequestUnserved {
        /// Request index.
        request: usize,
        /// Its achievable net utility.
        eta: f64,
    },
    /// The duality gap exceeds tolerance.
    DualityGap {
        /// Primal objective (social welfare).
        primal: f64,
        /// Dual objective.
        dual: f64,
    },
}

/// Outcome of [`verify_optimality`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OptimalityReport {
    /// The social welfare of the assignment.
    pub primal_objective: f64,
    /// The dual objective `Σ λ B + Σ η`.
    pub dual_objective: f64,
    /// Every violated condition (empty ⇔ certified optimal within `tol`).
    pub violations: Vec<Violation>,
}

impl OptimalityReport {
    /// Whether the pair is certified optimal.
    pub fn is_optimal(&self) -> bool {
        self.violations.is_empty()
    }

    /// The absolute duality gap.
    pub fn gap(&self) -> f64 {
        (self.dual_objective - self.primal_objective).abs()
    }
}

/// Verifies Theorem 1 for a primal/dual pair within tolerance `tol`
/// (use `tol ≳ n·ε` for ε-auctions).
///
/// # Examples
///
/// ```
/// use p2p_core::{WelfareInstance, SyncAuction, AuctionConfig, verify_optimality};
/// use p2p_types::*;
///
/// let mut b = WelfareInstance::builder();
/// let u = b.add_provider(PeerId::new(5), 1);
/// let r = b.add_request(RequestId::new(PeerId::new(0), ChunkId::new(VideoId::new(0), 0)));
/// b.add_edge(r, u, Valuation::new(3.0), Cost::new(1.0)).unwrap();
/// let inst = b.build().unwrap();
/// let out = SyncAuction::new(AuctionConfig::paper()).run(&inst).unwrap();
/// let report = verify_optimality(&inst, &out.assignment, &out.duals, 1e-9);
/// assert!(report.is_optimal());
/// ```
pub fn verify_optimality(
    instance: &WelfareInstance,
    assignment: &Assignment,
    duals: &DualSolution,
    tol: f64,
) -> OptimalityReport {
    let mut violations = Vec::new();

    if let Err(e) = assignment.validate(instance) {
        violations.push(Violation::PrimalInfeasible(e.to_string()));
    }
    if let Err(e) = duals.validate(instance, tol) {
        violations.push(Violation::DualInfeasible(e.to_string()));
    }

    // CS 1: λ_u > 0 ⇒ provider fully allocated.
    let loads = assignment.provider_loads(instance);
    for (u, spec) in instance.providers().iter().enumerate() {
        let lambda = duals.lambda.get(u).copied().unwrap_or(0.0);
        let capacity = spec.capacity.chunks_per_slot();
        if lambda > tol && loads[u] < capacity {
            violations.push(Violation::UnsoldPricedCapacity {
                provider: u,
                lambda,
                sold: loads[u],
                capacity,
            });
        }
    }

    // CS 2: winners are served at an argmax edge; CS 3: requests with
    // positive achievable utility are served.
    for (r, req) in instance.requests().iter().enumerate() {
        let best = req
            .edges
            .iter()
            .map(|e| e.utility().get() - duals.lambda[e.provider])
            .fold(f64::NEG_INFINITY, f64::max);
        match assignment.choice(r) {
            Some(e) => {
                let edge = &req.edges[e];
                let chosen = edge.utility().get() - duals.lambda[edge.provider];
                if chosen < best - tol {
                    violations.push(Violation::AssignedBelowBest { request: r, chosen, best });
                }
            }
            None => {
                let eta = best.max(0.0);
                if eta > tol {
                    violations.push(Violation::ProfitableRequestUnserved { request: r, eta });
                }
            }
        }
    }

    let primal_objective = assignment.welfare(instance).get();
    let dual_objective = duals.objective(instance);
    // Scale the gap tolerance with problem size: each CS equation can
    // contribute up to tol of slack.
    let scale = 1.0 + instance.request_count() as f64 + instance.provider_count() as f64;
    if (dual_objective - primal_objective).abs() > tol * scale {
        violations.push(Violation::DualityGap { primal: primal_objective, dual: dual_objective });
    }

    OptimalityReport { primal_objective, dual_objective, violations }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{AuctionConfig, SyncAuction};
    use p2p_types::{ChunkId, Cost, PeerId, RequestId, Valuation, VideoId};

    fn rid(d: u32, c: u32) -> RequestId {
        RequestId::new(PeerId::new(d), ChunkId::new(VideoId::new(0), c))
    }

    fn instance() -> WelfareInstance {
        let mut b = WelfareInstance::builder();
        let u0 = b.add_provider(PeerId::new(100), 1);
        let u1 = b.add_provider(PeerId::new(101), 2);
        let r0 = b.add_request(rid(0, 0));
        let r1 = b.add_request(rid(1, 0));
        b.add_edge(r0, u0, Valuation::new(6.0), Cost::new(1.0)).unwrap();
        b.add_edge(r0, u1, Valuation::new(6.0), Cost::new(4.0)).unwrap();
        b.add_edge(r1, u0, Valuation::new(5.0), Cost::new(1.0)).unwrap();
        b.add_edge(r1, u1, Valuation::new(5.0), Cost::new(3.5)).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn auction_outcome_is_certified() {
        let inst = instance();
        let out = SyncAuction::new(AuctionConfig::paper()).run(&inst).unwrap();
        let report = verify_optimality(&inst, &out.assignment, &out.duals, 1e-9);
        assert!(report.is_optimal(), "{:?}", report.violations);
        assert!(report.gap() < 1e-6);
    }

    #[test]
    fn detects_cs3_violation() {
        let inst = instance();
        // Leave everything unassigned at zero prices: profitable requests
        // unserved, and the dual is infeasible too.
        let a = Assignment::empty(2);
        let d = DualSolution { lambda: vec![0.0, 0.0], eta: vec![0.0, 0.0] };
        let report = verify_optimality(&inst, &a, &d, 1e-9);
        assert!(!report.is_optimal());
        assert!(report.violations.iter().any(|v| matches!(v, Violation::DualInfeasible(_))));
    }

    #[test]
    fn detects_cs1_violation() {
        let inst = instance();
        let out = SyncAuction::default().run(&inst).unwrap();
        // Inflate a price above its true value: provider 1 has spare
        // capacity, so a positive λ violates CS 1.
        let mut duals = out.duals.clone();
        duals.lambda[1] += 5.0;
        duals = DualSolution::from_prices(&inst, duals.lambda);
        let report = verify_optimality(&inst, &out.assignment, &duals, 1e-9);
        assert!(report
            .violations
            .iter()
            .any(|v| matches!(v, Violation::UnsoldPricedCapacity { provider: 1, .. })));
    }

    #[test]
    fn detects_cs2_violation() {
        let inst = instance();
        // Assign r0 to its worse edge (u1) while prices say u0 is better.
        let a = Assignment::new(vec![Some(1), Some(0)]);
        let d = DualSolution::from_prices(&inst, vec![4.0, 3.0]);
        let report = verify_optimality(&inst, &a, &d, 1e-9);
        assert!(report
            .violations
            .iter()
            .any(|v| matches!(v, Violation::AssignedBelowBest { request: 0, .. })));
    }

    #[test]
    fn detects_primal_infeasibility() {
        let inst = instance();
        let a = Assignment::new(vec![Some(0), Some(0)]); // both at capacity-1 u0
        let d = DualSolution::from_prices(&inst, vec![9.0, 9.0]);
        let report = verify_optimality(&inst, &a, &d, 1e-9);
        assert!(report.violations.iter().any(|v| matches!(v, Violation::PrimalInfeasible(_))));
    }

    #[test]
    fn epsilon_auction_verifies_with_scaled_tolerance() {
        let inst = instance();
        let eps = 0.01;
        let out = SyncAuction::new(AuctionConfig::with_epsilon(eps)).run(&inst).unwrap();
        let report = verify_optimality(&inst, &out.assignment, &out.duals, eps * 2.0);
        assert!(report.is_optimal(), "{:?}", report.violations);
    }
}
