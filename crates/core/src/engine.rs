//! Synchronous (Gauss–Seidel) execution of the distributed auction.
//!
//! Runs the exact bidder/auctioneer logic of [`crate::bidder`] and
//! [`crate::auctioneer`] in deterministic rounds: each round sweeps the
//! unassigned requests in index order, letting each submit its bid
//! immediately (prices update as the sweep progresses). The auction
//! converges when a full round produces no bids — precisely the paper's
//! "no auctioneer wishes to change its allocation and no bidder wishes to
//! bid again".
//!
//! This is the fast path used by the slot scheduler, the property tests and
//! the benchmarks; the message-level execution with latencies lives in
//! [`crate::dist`].

use crate::auctioneer::{Auctioneer, BidOutcome};
use crate::bidder::{decide_bid, BidDecision, EdgeView};
use crate::instance::{ProviderIdx, WelfareInstance};
use crate::solution::{Assignment, DualSolution};
use p2p_metrics::{AuctionProbe, NoProbe};
use p2p_types::P2pError;
use serde::{Deserialize, Serialize};

/// Auction engine configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AuctionConfig {
    /// Bid increment ε. `0` is the paper-faithful rule (abstain on ties);
    /// positive values trade ≤ `n·ε` welfare for guaranteed termination.
    pub epsilon: f64,
    /// Safety cap on rounds before declaring divergence.
    pub max_rounds: u64,
    /// Record every price change (for convergence plots).
    pub record_price_trace: bool,
    /// Permanently retire priced-out requests in the sequential sweep.
    ///
    /// Prices are monotone within a run, so a request whose best net
    /// utility has gone negative (or that has no candidates) can never
    /// become profitable again; the sharded engine always drops such
    /// requests from future rounds, and this flag folds the same trick into
    /// [`SyncAuction`] — the trick is engine-agnostic. The outcome is
    /// unchanged either way (retired requests could only abstain), the
    /// sweep just stops re-scanning them. Off by default to keep the
    /// paper-faithful schedule exactly as written.
    pub retire_priced_out: bool,
}

impl AuctionConfig {
    /// The paper's configuration: ε = 0, no trace.
    pub fn paper() -> Self {
        AuctionConfig {
            epsilon: 0.0,
            max_rounds: 1_000_000,
            record_price_trace: false,
            retire_priced_out: false,
        }
    }

    /// Paper configuration with a positive ε (Bertsekas ε-complementary
    /// slackness).
    pub fn with_epsilon(epsilon: f64) -> Self {
        AuctionConfig { epsilon, ..Self::paper() }
    }

    /// Enables price-trace recording (builder-style).
    #[must_use]
    pub fn recording_trace(mut self) -> Self {
        self.record_price_trace = true;
        self
    }

    /// Enables permanent retirement of priced-out requests in the
    /// sequential sweep (builder-style) — see
    /// [`AuctionConfig::retire_priced_out`].
    #[must_use]
    pub fn retiring_priced_out(mut self) -> Self {
        self.retire_priced_out = true;
        self
    }
}

impl Default for AuctionConfig {
    fn default() -> Self {
        Self::paper()
    }
}

/// ε-scaling schedule for [`SyncAuction::run_scaled`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EpsilonScaling {
    /// First-phase ε (scaled to the instance's value range; the paper's
    /// valuations cap at 8, so 1.0 is a good default).
    pub initial: f64,
    /// Geometric decay per phase (> 1).
    pub decay: f64,
    /// ε of the final phase — the accuracy actually guaranteed
    /// (`n · final_epsilon`).
    pub final_epsilon: f64,
}

impl EpsilonScaling {
    /// Defaults suited to the paper's valuation range: 1.0 → ×¼ → 10⁻⁶.
    pub fn paper_range() -> Self {
        EpsilonScaling { initial: 1.0, decay: 4.0, final_epsilon: 1e-6 }
    }

    pub(crate) fn validate(&self) -> Result<(), P2pError> {
        if !(self.initial.is_finite() && self.initial > 0.0) {
            return Err(P2pError::invalid_config("scaling.initial", "must be positive"));
        }
        if !(self.decay.is_finite() && self.decay > 1.0) {
            return Err(P2pError::invalid_config("scaling.decay", "must exceed 1"));
        }
        if !(self.final_epsilon.is_finite() && self.final_epsilon > 0.0) {
            return Err(P2pError::invalid_config("scaling.final_epsilon", "must be positive"));
        }
        if self.final_epsilon > self.initial {
            return Err(P2pError::invalid_config(
                "scaling.final_epsilon",
                "must not exceed the initial epsilon",
            ));
        }
        Ok(())
    }
}

/// One recorded price change.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PriceChange {
    /// Round during which the change happened (1-based).
    pub round: u64,
    /// The provider whose price changed.
    pub provider: ProviderIdx,
    /// The new price `λ_u`.
    pub price: f64,
}

/// Result of a converged auction.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AuctionOutcome {
    /// The binary primal solution (`a^{(c)}_{u→d}`).
    pub assignment: Assignment,
    /// The dual solution (`λ_u`, `η^{(c)}_d`).
    pub duals: DualSolution,
    /// Rounds executed (including the final quiet round).
    pub rounds: u64,
    /// Total bids submitted.
    pub bids_submitted: u64,
    /// Whether the auction reached quiescence (always `true` for outcomes
    /// returned by [`SyncAuction::run`]; kept for symmetry with the
    /// distributed engine).
    pub converged: bool,
    /// Price changes, if tracing was enabled.
    pub price_trace: Vec<PriceChange>,
}

/// The synchronous auction engine.
///
/// # Examples
///
/// See the crate-level example; `SyncAuction` is the default way to solve a
/// [`WelfareInstance`].
#[derive(Debug, Clone, Default)]
pub struct SyncAuction {
    config: AuctionConfig,
}

impl SyncAuction {
    /// Creates an engine with the given configuration.
    pub fn new(config: AuctionConfig) -> Self {
        SyncAuction { config }
    }

    /// The engine's configuration.
    pub fn config(&self) -> &AuctionConfig {
        &self.config
    }

    /// Runs the auction to convergence on `instance`.
    ///
    /// # Errors
    ///
    /// Returns [`P2pError::AuctionDiverged`] if quiescence is not reached
    /// within `max_rounds` (possible only with adversarial floating-point
    /// patterns; the paper's Theorem 1 guarantees termination under its
    /// sufficiency assumption).
    pub fn run(&self, instance: &WelfareInstance) -> Result<AuctionOutcome, P2pError> {
        self.run_from(instance, None, self.config.epsilon, &mut NoProbe)
    }

    /// [`SyncAuction::run`] with an observation probe. The engine is generic
    /// over the probe, so `run` (which passes [`NoProbe`]) monomorphizes to
    /// the uninstrumented loop — outcomes are bit-identical either way
    /// (property-tested).
    pub fn run_probed(
        &self,
        instance: &WelfareInstance,
        probe: &mut impl AuctionProbe,
    ) -> Result<AuctionOutcome, P2pError> {
        self.run_from(instance, None, self.config.epsilon, probe)
    }

    /// Runs the auction warm-started from `prior_prices` — typically the
    /// previous slot's final `λ` vector, mapped by the caller onto this
    /// instance's provider order (missing entries default to 0). On
    /// slot-to-slot reoptimization most prices are already near their new
    /// equilibrium, so the auction converges in a fraction of the bids a
    /// cold start needs (Bertsekas-style auction reoptimization).
    ///
    /// # Price clamping
    ///
    /// Carried prices are clamped to stay ε-valid: non-finite or negative
    /// entries become 0, and every price is relaxed by the engine's ε
    /// (`max(p − ε, 0)`), mirroring the inter-phase relaxation of
    /// [`SyncAuction::run_scaled`] — a winner may have overbid its value by
    /// up to ε last slot, and carrying that price verbatim would price the
    /// winner out of its own slot.
    ///
    /// # Certificate preservation
    ///
    /// A carried price can be *unsupported* by this slot's demand: the
    /// provider ends with unsold capacity at `λ > 0`, violating CS 1 of
    /// Theorem 1 (prices raised by actual bids never do — a price only
    /// rises when the provider is full, and eviction keeps it full). After
    /// each converged run the engine therefore zeroes every unsupported
    /// warm price and reruns; each pass permanently clears at least one
    /// provider, so at most `provider_count` extra runs occur (zero in the
    /// common little-changed-slot case), and the final outcome satisfies
    /// the same `n·ε` certificate as a cold run.
    ///
    /// # Errors
    ///
    /// Returns [`P2pError::AuctionDiverged`] if any pass exceeds
    /// `max_rounds`.
    ///
    /// # Examples
    ///
    /// ```
    /// use p2p_core::{WelfareInstance, SyncAuction, AuctionConfig, verify_optimality};
    /// use p2p_types::{PeerId, RequestId, ChunkId, VideoId, Valuation, Cost};
    ///
    /// let mut b = WelfareInstance::builder();
    /// let u = b.add_provider(PeerId::new(9), 1);
    /// let r0 = b.add_request(RequestId::new(PeerId::new(0), ChunkId::new(VideoId::new(0), 0)));
    /// let r1 = b.add_request(RequestId::new(PeerId::new(1), ChunkId::new(VideoId::new(0), 0)));
    /// b.add_edge(r0, u, Valuation::new(5.0), Cost::new(1.0)).unwrap();
    /// b.add_edge(r1, u, Valuation::new(4.0), Cost::new(1.0)).unwrap();
    /// let inst = b.build().unwrap();
    ///
    /// let engine = SyncAuction::new(AuctionConfig::paper());
    /// let cold = engine.run(&inst).unwrap();
    /// // Re-run the same slot from the converged prices: quiescent at once.
    /// let warm = engine.run_warm(&inst, &cold.duals.lambda).unwrap();
    /// assert_eq!(warm.assignment.welfare(&inst), cold.assignment.welfare(&inst));
    /// let report = verify_optimality(&inst, &warm.assignment, &warm.duals, 1e-9);
    /// assert!(report.is_optimal());
    /// ```
    pub fn run_warm(
        &self,
        instance: &WelfareInstance,
        prior_prices: &[f64],
    ) -> Result<AuctionOutcome, P2pError> {
        self.run_warm_probed(instance, prior_prices, &mut NoProbe)
    }

    /// [`SyncAuction::run_warm`] with an observation probe (every repair
    /// pass reports into the same probe).
    pub fn run_warm_probed(
        &self,
        instance: &WelfareInstance,
        prior_prices: &[f64],
        probe: &mut impl AuctionProbe,
    ) -> Result<AuctionOutcome, P2pError> {
        let eps = self.config.epsilon;
        run_warm_with(instance, prior_prices, eps, |prices| {
            self.run_from(instance, prices, eps, &mut *probe)
        })
    }

    /// Runs the auction with ε-scaling (Bertsekas 1988): phases with
    /// geometrically shrinking ε, each warm-starting from the previous
    /// phase's (ε-relaxed) prices. Large early ε moves prices in big steps,
    /// ending any price war in few bids where a flat small ε needs
    /// `value range / ε` of them — see the twin-values test below for the
    /// order-of-magnitude difference.
    ///
    /// # Guarantee
    ///
    /// The welfare is within `n · initial` of optimal, and on generic
    /// (tie-free) instances within `n · final_epsilon`. The stronger bound
    /// does not hold universally: carried prices can preserve exact
    /// cross-provider ties created by earlier phases, and a request parked
    /// on the wrong side of such a tie never moves (assigned bidders only
    /// move when evicted). Certifying the tight bound in general requires
    /// forward-*reverse* auction phases (Bertsekas & Castañon 1989), which
    /// are out of scope; use a flat-ε [`SyncAuction::run`] when the
    /// `n·ε` certificate matters more than speed.
    ///
    /// # Errors
    ///
    /// Returns [`P2pError::AuctionDiverged`] if any phase exceeds
    /// `max_rounds`, or [`P2pError::InvalidConfig`] for invalid scaling
    /// parameters.
    pub fn run_scaled(
        &self,
        instance: &WelfareInstance,
        scaling: EpsilonScaling,
    ) -> Result<AuctionOutcome, P2pError> {
        scaling.validate()?;
        let mut epsilon = scaling.initial;
        let mut prices: Option<Vec<f64>> = None;
        let mut rounds = 0;
        let mut bids = 0;
        let mut trace = Vec::new();
        loop {
            let last_phase = epsilon <= scaling.final_epsilon;
            let eps = epsilon.max(scaling.final_epsilon);
            let outcome = self.run_from(instance, prices.as_deref(), eps, &mut NoProbe)?;
            rounds += outcome.rounds;
            bids += outcome.bids_submitted;
            trace.extend(outcome.price_trace.iter().copied());
            if last_phase {
                return Ok(AuctionOutcome {
                    rounds,
                    bids_submitted: bids,
                    price_trace: trace,
                    ..outcome
                });
            }
            // Carry prices relaxed by the phase's ε: a winner can overbid
            // its value by up to ε, and carrying that price verbatim would
            // price the winner itself out of the next phase (free disposal
            // makes overbid prices sticky, unlike the symmetric assignment
            // problem). Subtracting ε restores ε-complementary slackness
            // for the next phase.
            prices = Some(outcome.duals.lambda.iter().map(|l| (l - eps).max(0.0)).collect());
            epsilon /= scaling.decay;
        }
    }

    /// Core engine: optional warm-start prices, explicit ε. Generic over
    /// the probe so the [`NoProbe`] instantiation compiles to the bare loop.
    pub(crate) fn run_from<P: AuctionProbe>(
        &self,
        instance: &WelfareInstance,
        initial_prices: Option<&[f64]>,
        epsilon: f64,
        probe: &mut P,
    ) -> Result<AuctionOutcome, P2pError> {
        let views = edge_views(instance);
        let mut auctioneers: Vec<Auctioneer> = instance
            .providers()
            .iter()
            .enumerate()
            .map(|(u, p)| {
                let warm = initial_prices
                    .and_then(|ps| ps.get(u).copied())
                    .filter(|w| w.is_finite() && *w >= 0.0)
                    .unwrap_or(0.0);
                if p.capacity.is_zero() {
                    Auctioneer::new(0)
                } else {
                    Auctioneer::with_price(p.capacity.chunks_per_slot(), warm)
                }
            })
            .collect();
        // Effective price used by bidders: +∞ for zero-capacity providers
        // so nobody targets them.
        let mut eff_price: Vec<f64> = instance
            .providers()
            .iter()
            .enumerate()
            .map(|(u, p)| if p.capacity.is_zero() { f64::INFINITY } else { auctioneers[u].price() })
            .collect();

        let mut assigned: Vec<Option<usize>> = vec![None; instance.request_count()];
        let retire = self.config.retire_priced_out;
        let mut retired: Vec<bool> = vec![false; if retire { instance.request_count() } else { 0 }];
        let mut trace = Vec::new();
        let mut rounds = 0u64;
        let mut bids_submitted = 0u64;

        loop {
            rounds += 1;
            if rounds > self.config.max_rounds {
                return Err(P2pError::AuctionDiverged { iterations: rounds - 1 });
            }
            let mut bids_this_round = 0u64;
            let mut conflicts_this_round = 0u64;
            let mut retired_this_round = 0u64;
            for r in 0..instance.request_count() {
                if assigned[r].is_some() {
                    continue;
                }
                if retire && retired[r] {
                    continue;
                }
                match decide_bid(&views[r], |p| eff_price[p], epsilon) {
                    // Prices are monotone within a run, so an unprofitable
                    // (or candidate-less) request stays so forever; with
                    // the retirement flag on it is never re-scanned. A
                    // zero-margin tie can still be broken by a second-best
                    // price rise, so it stays live.
                    BidDecision::Abstain { reason } => {
                        if retire
                            && matches!(
                                reason,
                                crate::bidder::AbstainReason::Unprofitable
                                    | crate::bidder::AbstainReason::NoCandidates
                            )
                        {
                            retired[r] = true;
                            retired_this_round += 1;
                        }
                    }
                    BidDecision::Bid { edge, provider, amount } => {
                        bids_this_round += 1;
                        match auctioneers[provider].handle_bid(r, amount) {
                            BidOutcome::Rejected { .. } => {
                                // Unreachable with up-to-date prices: the
                                // bidder only bids strictly above λ.
                                debug_assert!(false, "synchronous bid rejected");
                            }
                            BidOutcome::Accepted { evicted, new_price } => {
                                assigned[r] = Some(edge);
                                if let Some(loser) = evicted {
                                    assigned[loser] = None;
                                    conflicts_this_round += 1;
                                }
                                if let Some(p) = new_price {
                                    probe.price_change(provider, p - eff_price[provider]);
                                    eff_price[provider] = p;
                                    if self.config.record_price_trace {
                                        trace.push(PriceChange {
                                            round: rounds,
                                            provider,
                                            price: p,
                                        });
                                    }
                                }
                            }
                        }
                    }
                }
            }
            bids_submitted += bids_this_round;
            probe.round(rounds, bids_this_round, conflicts_this_round, 0, retired_this_round);
            if bids_this_round == 0 {
                break;
            }
        }

        let lambda = final_prices(instance, &auctioneers);
        let outcome = AuctionOutcome {
            assignment: Assignment::new(assigned),
            duals: DualSolution::from_prices(instance, lambda),
            rounds,
            bids_submitted,
            converged: true,
            price_trace: trace,
        };
        if probe.enabled() {
            // Theorem 1's certificate: the duality gap bounds the welfare
            // loss. Only computed when someone is listening.
            let slack =
                outcome.duals.objective(instance) - outcome.assignment.welfare(instance).get();
            probe.run_complete(
                outcome.rounds,
                outcome.bids_submitted,
                outcome.assignment.assigned_count() as u64,
                slack,
            );
        }
        Ok(outcome)
    }
}

/// Shared warm-start driver: clamps and pre-filters the carried prices,
/// then repeatedly runs `run_from` until no unsupported warm price is left
/// (the CS 1 repair loop documented on [`SyncAuction::run_warm`]). Each
/// pass permanently clears at least one provider, so at most
/// `provider_count` extra runs occur. Used by the synchronous, sharded and
/// networked engines so their warm-start semantics cannot drift apart.
pub fn run_warm_with(
    instance: &WelfareInstance,
    prior_prices: &[f64],
    epsilon: f64,
    mut run_from: impl FnMut(Option<&[f64]>) -> Result<AuctionOutcome, P2pError>,
) -> Result<AuctionOutcome, P2pError> {
    let mut prices = clamped_warm_prices(instance, prior_prices, epsilon);
    let mut rounds = 0;
    let mut bids = 0;
    let mut trace = Vec::new();
    loop {
        let outcome = run_from(Some(&prices))?;
        rounds += outcome.rounds;
        bids += outcome.bids_submitted;
        trace.extend(outcome.price_trace.iter().copied());
        if !zero_unsupported_prices(instance, &outcome, &mut prices) {
            return Ok(AuctionOutcome {
                rounds,
                bids_submitted: bids,
                price_trace: trace,
                ..outcome
            });
        }
    }
}

/// Carried prices made ε-valid for a warm start: non-finite or negative
/// entries become 0, every price is relaxed by ε, and the support
/// pre-filter zeroes prices the slot's demand cannot sustain.
fn clamped_warm_prices(instance: &WelfareInstance, prior_prices: &[f64], eps: f64) -> Vec<f64> {
    let mut prices: Vec<f64> = (0..instance.provider_count())
        .map(|u| {
            let p = prior_prices.get(u).copied().unwrap_or(0.0);
            if p.is_finite() {
                (p - eps).max(0.0)
            } else {
                0.0
            }
        })
        .collect();
    // Cheap support pre-filter: a positive price survives only if the
    // provider can sell out at it, and a request only bids where
    // `v − w > λ` — so a carried price with fewer than `capacity`
    // profitable incident edges is doomed. Zeroing those up front
    // avoids a full repair rerun whenever last slot's demand moved
    // away (delivered chunks leaving the instance is the common case).
    let mut potential = vec![0u32; instance.provider_count()];
    for r in instance.requests() {
        for e in &r.edges {
            if prices[e.provider] > 0.0 && e.utility().get() > prices[e.provider] {
                potential[e.provider] += 1;
            }
        }
    }
    for (u, spec) in instance.providers().iter().enumerate() {
        if prices[u] > 0.0 && potential[u] < spec.capacity.chunks_per_slot() {
            prices[u] = 0.0;
        }
    }
    prices
}

/// CS 1 support check: a provider with spare capacity and λ > 0 kept an
/// unsupported warm price (bid-raised prices imply a full provider). Zeroes
/// those — never re-warming a repaired one — and reports whether a rerun is
/// needed.
fn zero_unsupported_prices(
    instance: &WelfareInstance,
    outcome: &AuctionOutcome,
    prices: &mut [f64],
) -> bool {
    let loads = outcome.assignment.provider_loads(instance);
    let mut repaired = false;
    for (u, spec) in instance.providers().iter().enumerate() {
        let cap = spec.capacity.chunks_per_slot();
        if cap > 0 && loads[u] < cap && prices[u] > 0.0 && outcome.duals.lambda[u] > 0.0 {
            prices[u] = 0.0;
            repaired = true;
        }
    }
    repaired
}

/// Precomputes the bidder-visible edge views of every request.
pub fn edge_views(instance: &WelfareInstance) -> Vec<Vec<EdgeView>> {
    instance
        .requests()
        .iter()
        .map(|r| {
            r.edges
                .iter()
                .map(|e| EdgeView { provider: e.provider, utility: e.utility().get() })
                .collect()
        })
        .collect()
}

/// Reported final prices: the auctioneer's λ for active providers; for
/// zero-capacity providers (which constrain nothing but still appear in
/// dual constraint (6)), the smallest feasible standalone price
/// `max(0, max incident v−w)`.
pub(crate) fn final_prices(instance: &WelfareInstance, auctioneers: &[Auctioneer]) -> Vec<f64> {
    final_prices_from(instance, auctioneers.iter().map(Auctioneer::price).collect())
}

/// [`final_prices`] over raw λ values — the entry point for transports
/// whose auctioneers live inside protocol nodes rather than a bare
/// `Vec<Auctioneer>`.
pub fn final_prices_from(instance: &WelfareInstance, mut lambda: Vec<f64>) -> Vec<f64> {
    for (u, spec) in instance.providers().iter().enumerate() {
        if spec.capacity.is_zero() {
            let max_utility = instance
                .requests()
                .iter()
                .flat_map(|r| r.edges.iter())
                .filter(|e| e.provider == u)
                .map(|e| e.utility().get())
                .fold(0.0_f64, f64::max);
            lambda[u] = max_utility;
        }
    }
    lambda
}

#[cfg(test)]
mod tests {
    use super::*;
    use p2p_types::{ChunkId, Cost, PeerId, RequestId, Utility, Valuation, VideoId};

    fn rid(d: u32, c: u32) -> RequestId {
        RequestId::new(PeerId::new(d), ChunkId::new(VideoId::new(0), c))
    }

    /// 2 requests competing for 1 unit at one provider plus a fallback.
    fn competitive_instance() -> WelfareInstance {
        let mut b = WelfareInstance::builder();
        let cheap = b.add_provider(PeerId::new(100), 1);
        let costly = b.add_provider(PeerId::new(101), 2);
        let r0 = b.add_request(rid(0, 0));
        let r1 = b.add_request(rid(1, 0));
        b.add_edge(r0, cheap, Valuation::new(6.0), Cost::new(1.0)).unwrap(); // 5
        b.add_edge(r0, costly, Valuation::new(6.0), Cost::new(4.0)).unwrap(); // 2
        b.add_edge(r1, cheap, Valuation::new(5.0), Cost::new(1.0)).unwrap(); // 4
        b.add_edge(r1, costly, Valuation::new(5.0), Cost::new(3.5)).unwrap(); // 1.5
        b.build().unwrap()
    }

    #[test]
    fn reaches_exact_optimum_on_competitive_instance() {
        let inst = competitive_instance();
        let out = SyncAuction::new(AuctionConfig::paper()).run(&inst).unwrap();
        assert!(out.converged);
        // Optimal: r0 at cheap (5) + r1 at costly (1.5) = 6.5, beating
        // r1 at cheap + r0 at costly = 4 + 2 = 6.
        assert_eq!(out.assignment.welfare(&inst), inst.optimal_welfare());
        assert!(out.assignment.validate(&inst).is_ok());
        assert!(out.duals.validate(&inst, 1e-9).is_ok());
    }

    #[test]
    fn unprofitable_requests_stay_unassigned() {
        let mut b = WelfareInstance::builder();
        let u = b.add_provider(PeerId::new(9), 5);
        let r = b.add_request(rid(0, 0));
        b.add_edge(r, u, Valuation::new(0.8), Cost::new(9.0)).unwrap();
        let inst = b.build().unwrap();
        let out = SyncAuction::default().run(&inst).unwrap();
        assert_eq!(out.assignment.assigned_count(), 0);
        assert_eq!(out.assignment.welfare(&inst), Utility::ZERO);
    }

    #[test]
    fn capacity_zero_providers_are_ignored() {
        let mut b = WelfareInstance::builder();
        let dead = b.add_provider(PeerId::new(9), 0);
        let live = b.add_provider(PeerId::new(10), 1);
        let r = b.add_request(rid(0, 0));
        b.add_edge(r, dead, Valuation::new(8.0), Cost::new(0.0)).unwrap();
        b.add_edge(r, live, Valuation::new(8.0), Cost::new(2.0)).unwrap();
        let inst = b.build().unwrap();
        let out = SyncAuction::default().run(&inst).unwrap();
        assert_eq!(out.assignment.provider_of(&inst, 0), Some(live));
        // The dead provider's reported λ keeps the dual feasible.
        assert!(out.duals.validate(&inst, 1e-9).is_ok());
        assert!(out.duals.lambda[dead] >= 8.0 - 1e-9);
    }

    #[test]
    fn empty_instance_converges_immediately() {
        let inst = WelfareInstance::builder().build().unwrap();
        let out = SyncAuction::default().run(&inst).unwrap();
        assert_eq!(out.rounds, 1);
        assert_eq!(out.bids_submitted, 0);
    }

    #[test]
    fn epsilon_resolves_degenerate_ties() {
        // Two identical requests, two identical providers: ε = 0 abstains
        // (both see zero margin) leaving welfare on the table; ε > 0 assigns
        // both.
        let mut b = WelfareInstance::builder();
        let u0 = b.add_provider(PeerId::new(100), 1);
        let u1 = b.add_provider(PeerId::new(101), 1);
        for d in 0..2 {
            let r = b.add_request(rid(d, 0));
            b.add_edge(r, u0, Valuation::new(5.0), Cost::new(1.0)).unwrap();
            b.add_edge(r, u1, Valuation::new(5.0), Cost::new(1.0)).unwrap();
        }
        let inst = b.build().unwrap();

        let stalled = SyncAuction::new(AuctionConfig::paper()).run(&inst).unwrap();
        assert_eq!(stalled.assignment.assigned_count(), 0, "paper rule deadlocks on ties");

        let out = SyncAuction::new(AuctionConfig::with_epsilon(0.01)).run(&inst).unwrap();
        assert_eq!(out.assignment.assigned_count(), 2);
        let optimal = inst.optimal_welfare().get();
        assert!(out.assignment.welfare(&inst).get() >= optimal - 2.0 * 0.01);
    }

    #[test]
    fn price_trace_records_monotone_prices() {
        let inst = competitive_instance();
        let out = SyncAuction::new(AuctionConfig::paper().recording_trace()).run(&inst).unwrap();
        assert!(!out.price_trace.is_empty());
        let mut last: Vec<f64> = vec![0.0; inst.provider_count()];
        for pc in &out.price_trace {
            assert!(pc.price >= last[pc.provider], "price decreased in trace");
            last[pc.provider] = pc.price;
        }
    }

    #[test]
    fn prices_support_the_assignment_as_cs_requires() {
        let inst = competitive_instance();
        let out = SyncAuction::default().run(&inst).unwrap();
        // Complementary slackness condition 2: every winner is served by an
        // argmax provider at final prices.
        for r in 0..inst.request_count() {
            if let Some(u) = out.assignment.provider_of(&inst, r) {
                let best = inst
                    .request(r)
                    .edges
                    .iter()
                    .map(|e| e.utility().get() - out.duals.lambda[e.provider])
                    .fold(f64::NEG_INFINITY, f64::max);
                let chosen = inst
                    .request(r)
                    .edges
                    .iter()
                    .find(|e| e.provider == u)
                    .map(|e| e.utility().get() - out.duals.lambda[u])
                    .unwrap();
                assert!(chosen >= best - 1e-9);
            }
        }
    }

    #[test]
    fn divergence_guard_fires_with_tiny_round_budget() {
        let inst = competitive_instance();
        let cfg = AuctionConfig { max_rounds: 0, ..AuctionConfig::paper() };
        let err = SyncAuction::new(cfg).run(&inst).unwrap_err();
        assert!(matches!(err, P2pError::AuctionDiverged { .. }));
    }

    #[test]
    fn scaled_auction_matches_exact_within_final_epsilon() {
        let inst = competitive_instance();
        let scaling = EpsilonScaling::paper_range();
        let out = SyncAuction::default().run_scaled(&inst, scaling).unwrap();
        let exact = inst.optimal_welfare().get();
        let bound = inst.request_count() as f64 * scaling.final_epsilon + 1e-9;
        assert!(out.assignment.welfare(&inst).get() >= exact - bound);
        assert!(out.assignment.validate(&inst).is_ok());
    }

    #[test]
    fn scaling_crushes_price_wars_on_twin_values() {
        // Three identical high-value requests over two single-unit
        // providers: a flat small ε fights a `value/ε`-bid war; scaling
        // finishes in a handful of phases.
        let value = 50.0;
        let build = || {
            let mut b = WelfareInstance::builder();
            let u0 = b.add_provider(PeerId::new(100), 1);
            let u1 = b.add_provider(PeerId::new(101), 1);
            for d in 0..3 {
                let r = b.add_request(rid(d, 0));
                b.add_edge(r, u0, Valuation::new(value), Cost::new(0.0)).unwrap();
                b.add_edge(r, u1, Valuation::new(value), Cost::new(0.0)).unwrap();
            }
            b.build().unwrap()
        };
        let inst = build();
        let flat = SyncAuction::new(AuctionConfig::with_epsilon(0.01)).run(&inst).unwrap();
        let scaling = EpsilonScaling { initial: 16.0, decay: 4.0, final_epsilon: 0.01 };
        let scaled = SyncAuction::default().run_scaled(&inst, scaling).unwrap();
        assert_eq!(scaled.assignment.assigned_count(), 2);
        assert!(
            scaled.bids_submitted * 10 < flat.bids_submitted,
            "scaling ({}) must need far fewer bids than flat ε ({})",
            scaled.bids_submitted,
            flat.bids_submitted
        );
        // Both reach the optimum (two of three twins served).
        let exact = inst.optimal_welfare().get();
        assert!(scaled.assignment.welfare(&inst).get() >= exact - 3.0 * 0.01 - 1e-9);
        assert!(flat.assignment.welfare(&inst).get() >= exact - 3.0 * 0.01 - 1e-9);
    }

    #[test]
    fn scaled_single_bidder_is_not_priced_out_by_early_overbids() {
        // With a huge initial ε the lone bidder overbids its own value;
        // the inter-phase price relaxation must keep it assigned.
        let mut b = WelfareInstance::builder();
        let u = b.add_provider(PeerId::new(100), 1);
        let r = b.add_request(rid(0, 0));
        b.add_edge(r, u, Valuation::new(5.0), Cost::new(1.0)).unwrap();
        let inst = b.build().unwrap();
        let scaling = EpsilonScaling { initial: 64.0, decay: 4.0, final_epsilon: 1e-6 };
        let out = SyncAuction::default().run_scaled(&inst, scaling).unwrap();
        assert_eq!(out.assignment.assigned_count(), 1);
        assert!((out.assignment.welfare(&inst).get() - 4.0).abs() < 1e-6);
    }

    #[test]
    fn warm_start_from_converged_prices_is_cheap_and_certified() {
        let eps = 0.01;
        let inst = competitive_instance();
        let engine = SyncAuction::new(AuctionConfig::with_epsilon(eps));
        let cold = engine.run(&inst).unwrap();
        let warm = engine.run_warm(&inst, &cold.duals.lambda).unwrap();
        // Same welfare, and the reoptimization needs no more bids.
        assert_eq!(warm.assignment.welfare(&inst), cold.assignment.welfare(&inst));
        assert!(warm.bids_submitted <= cold.bids_submitted);
        let tol = eps * (inst.request_count() as f64 + 1.0);
        let report = crate::verify_optimality(&inst, &warm.assignment, &warm.duals, tol);
        assert!(report.is_optimal(), "{:?}", report.violations);
    }

    #[test]
    fn warm_start_repairs_unsupported_prices() {
        // Absurd carried prices would leave every provider unsold at λ > 0;
        // the repair loop must recover the cold outcome and its certificate.
        let inst = competitive_instance();
        let engine = SyncAuction::new(AuctionConfig::paper());
        let warm = engine.run_warm(&inst, &[1e6, 1e6]).unwrap();
        let cold = engine.run(&inst).unwrap();
        assert_eq!(warm.assignment.welfare(&inst), cold.assignment.welfare(&inst));
        let report = crate::verify_optimality(&inst, &warm.assignment, &warm.duals, 1e-9);
        assert!(report.is_optimal(), "{:?}", report.violations);
    }

    #[test]
    fn warm_start_tolerates_garbage_and_short_price_vectors() {
        let inst = competitive_instance();
        let engine = SyncAuction::new(AuctionConfig::with_epsilon(0.01));
        // NaN/negative entries clamp to 0; missing entries default to 0.
        for prices in [vec![f64::NAN, -3.0], vec![0.5], vec![]] {
            let warm = engine.run_warm(&inst, &prices).unwrap();
            assert!(warm.converged);
            let tol = 0.01 * (inst.request_count() as f64 + 1.0);
            let report = crate::verify_optimality(&inst, &warm.assignment, &warm.duals, tol);
            assert!(report.is_optimal(), "{:?}", report.violations);
        }
    }

    #[test]
    fn warm_start_keeps_certificate_when_demand_collapses() {
        // Last slot: two rich requests saturated the provider at high λ.
        // This slot: a single modest request. The carried price would leave
        // capacity unsold at λ > 0 (CS 1 violation) without repair.
        let mut b = WelfareInstance::builder();
        let u = b.add_provider(PeerId::new(7), 2);
        let r = b.add_request(rid(0, 0));
        b.add_edge(r, u, Valuation::new(2.0), Cost::new(0.5)).unwrap();
        let inst = b.build().unwrap();
        let engine = SyncAuction::new(AuctionConfig::paper());
        let warm = engine.run_warm(&inst, &[5.0]).unwrap();
        assert_eq!(warm.assignment.assigned_count(), 1);
        let report = crate::verify_optimality(&inst, &warm.assignment, &warm.duals, 1e-9);
        assert!(report.is_optimal(), "{:?}", report.violations);
    }

    #[test]
    fn invalid_scaling_rejected() {
        let inst = competitive_instance();
        for bad in [
            EpsilonScaling { initial: 0.0, decay: 4.0, final_epsilon: 1e-6 },
            EpsilonScaling { initial: 1.0, decay: 1.0, final_epsilon: 1e-6 },
            EpsilonScaling { initial: 1.0, decay: 4.0, final_epsilon: 0.0 },
            EpsilonScaling { initial: 1e-9, decay: 4.0, final_epsilon: 1.0 },
        ] {
            assert!(SyncAuction::default().run_scaled(&inst, bad).is_err());
        }
    }
}
