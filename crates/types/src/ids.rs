//! Identifier newtypes.
//!
//! All identifiers are dense small integers so that simulation state can be
//! stored in flat `Vec`s indexed by id. The newtypes keep peers, ISPs, videos
//! and chunks statically distinct (C-NEWTYPE).

use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a peer (both downstream requesters and upstream providers).
///
/// Corresponds to `I_d` / `I_u` in the paper's request tuple `(I_d, I_u, c)`.
///
/// # Examples
///
/// ```
/// use p2p_types::PeerId;
/// let p = PeerId::new(42);
/// assert_eq!(p.get(), 42);
/// assert_eq!(format!("{p}"), "peer#42");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct PeerId(u32);

impl PeerId {
    /// Creates a peer id from its dense index.
    pub const fn new(raw: u32) -> Self {
        PeerId(raw)
    }

    /// Returns the dense index.
    pub const fn get(self) -> u32 {
        self.0
    }

    /// Returns the id as a `usize` suitable for `Vec` indexing.
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for PeerId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "peer#{}", self.0)
    }
}

impl From<u32> for PeerId {
    fn from(raw: u32) -> Self {
        PeerId(raw)
    }
}

/// Identifier of an Internet Service Provider.
///
/// The paper deploys the system over the networks of `M` ISPs; `IspId`
/// indexes into `0..M`.
///
/// # Examples
///
/// ```
/// use p2p_types::IspId;
/// assert_eq!(IspId::new(2).get(), 2);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct IspId(u16);

impl IspId {
    /// Creates an ISP id from its dense index.
    pub const fn new(raw: u16) -> Self {
        IspId(raw)
    }

    /// Returns the dense index.
    pub const fn get(self) -> u16 {
        self.0
    }

    /// Returns the id as a `usize` suitable for `Vec` indexing.
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for IspId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "isp#{}", self.0)
    }
}

impl From<u16> for IspId {
    fn from(raw: u16) -> Self {
        IspId(raw)
    }
}

/// Identifier of a video (a content item divided into equal-sized chunks).
///
/// # Examples
///
/// ```
/// use p2p_types::VideoId;
/// assert_eq!(VideoId::new(99).index(), 99);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct VideoId(u32);

impl VideoId {
    /// Creates a video id from its dense index.
    pub const fn new(raw: u32) -> Self {
        VideoId(raw)
    }

    /// Returns the dense index.
    pub const fn get(self) -> u32 {
        self.0
    }

    /// Returns the id as a `usize` suitable for `Vec` indexing.
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for VideoId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "video#{}", self.0)
    }
}

/// Identifier of a chunk: a `(video, index-within-video)` pair.
///
/// Corresponds to `c` in the paper. Chunks are equal-sized (8 KB in the
/// paper's evaluation) and indexed in playback order.
///
/// # Examples
///
/// ```
/// use p2p_types::{ChunkId, VideoId};
/// let c = ChunkId::new(VideoId::new(1), 250);
/// assert_eq!(c.index_in_video(), 250);
/// assert!(c < ChunkId::new(VideoId::new(1), 251));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ChunkId {
    video: VideoId,
    index: u32,
}

impl ChunkId {
    /// Creates a chunk id for `index`-th chunk of `video`.
    pub const fn new(video: VideoId, index: u32) -> Self {
        ChunkId { video, index }
    }

    /// The video this chunk belongs to.
    pub const fn video(self) -> VideoId {
        self.video
    }

    /// Position of the chunk within its video, in playback order.
    pub const fn index_in_video(self) -> u32 {
        self.index
    }

    /// Returns the chunk that follows this one in playback order.
    pub const fn next(self) -> ChunkId {
        ChunkId { video: self.video, index: self.index + 1 }
    }
}

impl fmt::Display for ChunkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:c{}", self.video, self.index)
    }
}

/// Identifier of a download request: the pair `(I_d, c)`.
///
/// In the transportation-problem view of the paper this is a *source* node;
/// constraint (3) allows each `RequestId` to be matched to at most one
/// provider.
///
/// # Examples
///
/// ```
/// use p2p_types::{RequestId, PeerId, ChunkId, VideoId};
/// let r = RequestId::new(PeerId::new(4), ChunkId::new(VideoId::new(0), 17));
/// assert_eq!(r.downstream(), PeerId::new(4));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct RequestId {
    downstream: PeerId,
    chunk: ChunkId,
}

impl RequestId {
    /// Creates the request id for peer `downstream` wanting `chunk`.
    pub const fn new(downstream: PeerId, chunk: ChunkId) -> Self {
        RequestId { downstream, chunk }
    }

    /// The requesting (downstream) peer `I_d`.
    pub const fn downstream(self) -> PeerId {
        self.downstream
    }

    /// The requested chunk `c`.
    pub const fn chunk(self) -> ChunkId {
        self.chunk
    }
}

impl fmt::Display for RequestId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "req({}, {})", self.downstream, self.chunk)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn peer_id_roundtrip() {
        let p = PeerId::new(123);
        assert_eq!(p.get(), 123);
        assert_eq!(p.index(), 123);
        assert_eq!(PeerId::from(123u32), p);
    }

    #[test]
    fn display_formats_are_nonempty_and_distinct() {
        let p = format!("{}", PeerId::new(1));
        let i = format!("{}", IspId::new(1));
        let v = format!("{}", VideoId::new(1));
        let c = format!("{}", ChunkId::new(VideoId::new(1), 2));
        assert!(p.contains("peer"));
        assert!(i.contains("isp"));
        assert!(v.contains("video"));
        assert!(c.contains("c2"));
    }

    #[test]
    fn chunk_ordering_follows_playback_order() {
        let v = VideoId::new(0);
        let a = ChunkId::new(v, 1);
        let b = ChunkId::new(v, 2);
        assert!(a < b);
        assert_eq!(a.next(), b);
    }

    #[test]
    fn chunk_ordering_is_video_major() {
        let a = ChunkId::new(VideoId::new(0), 900);
        let b = ChunkId::new(VideoId::new(1), 0);
        assert!(a < b);
    }

    #[test]
    fn request_id_accessors() {
        let r = RequestId::new(PeerId::new(9), ChunkId::new(VideoId::new(2), 5));
        assert_eq!(r.downstream().get(), 9);
        assert_eq!(r.chunk().video().get(), 2);
        assert_eq!(r.chunk().index_in_video(), 5);
    }

    #[test]
    fn ids_are_hashable_and_usable_as_map_keys() {
        use std::collections::HashMap;
        let mut m = HashMap::new();
        m.insert(RequestId::new(PeerId::new(1), ChunkId::new(VideoId::new(0), 0)), 10);
        assert_eq!(m[&RequestId::new(PeerId::new(1), ChunkId::new(VideoId::new(0), 0))], 10);
    }

    #[test]
    fn isp_id_display() {
        assert_eq!(format!("{}", IspId::new(3)), "isp#3");
    }
}
