//! Request and transfer records.

use crate::ids::{ChunkId, PeerId, RequestId};
use crate::time::SimTime;
use crate::units::{Cost, Utility, Valuation};
use serde::{Deserialize, Serialize};
use std::fmt;

/// The paper's request three-tuple `(I_d, I_u, c)`: downstream peer `I_d`
/// asks upstream peer `I_u` for chunk `c`.
///
/// # Examples
///
/// ```
/// use p2p_types::{ChunkRequest, PeerId, ChunkId, VideoId};
/// let r = ChunkRequest::new(PeerId::new(1), PeerId::new(2), ChunkId::new(VideoId::new(0), 3));
/// assert_eq!(r.downstream(), PeerId::new(1));
/// assert_eq!(r.upstream(), PeerId::new(2));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ChunkRequest {
    downstream: PeerId,
    upstream: PeerId,
    chunk: ChunkId,
}

impl ChunkRequest {
    /// Creates the request tuple.
    pub const fn new(downstream: PeerId, upstream: PeerId, chunk: ChunkId) -> Self {
        ChunkRequest { downstream, upstream, chunk }
    }

    /// The requesting peer `I_d`.
    pub const fn downstream(self) -> PeerId {
        self.downstream
    }

    /// The requested peer `I_u`.
    pub const fn upstream(self) -> PeerId {
        self.upstream
    }

    /// The requested chunk `c`.
    pub const fn chunk(self) -> ChunkId {
        self.chunk
    }

    /// The `(I_d, c)` source identity of this request (the transportation
    /// problem's source node).
    pub const fn request_id(self) -> RequestId {
        RequestId::new(self.downstream, self.chunk)
    }
}

impl fmt::Display for ChunkRequest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({} <- {}, {})", self.downstream, self.upstream, self.chunk)
    }
}

/// A chunk transfer decided by a scheduler: the realized assignment
/// `a^{(c)}_{u→d} = 1` plus the welfare bookkeeping that went into it.
///
/// # Examples
///
/// ```
/// use p2p_types::*;
/// let t = ScheduledTransfer::new(
///     ChunkRequest::new(PeerId::new(1), PeerId::new(2), ChunkId::new(VideoId::new(0), 3)),
///     Valuation::new(4.0),
///     Cost::new(1.0),
/// );
/// assert_eq!(t.utility(), Utility::new(3.0));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ScheduledTransfer {
    request: ChunkRequest,
    valuation: Valuation,
    cost: Cost,
    decided_at: SimTime,
}

impl ScheduledTransfer {
    /// Records a scheduled transfer with its valuation and network cost.
    pub fn new(request: ChunkRequest, valuation: Valuation, cost: Cost) -> Self {
        ScheduledTransfer { request, valuation, cost, decided_at: SimTime::ZERO }
    }

    /// Attaches the simulated instant at which the schedule was decided.
    #[must_use]
    pub fn decided_at(mut self, at: SimTime) -> Self {
        self.decided_at = at;
        self
    }

    /// The underlying request tuple.
    pub const fn request(self) -> ChunkRequest {
        self.request
    }

    /// The downstream peer's valuation `v^{(c)}(d)` for the chunk.
    pub const fn valuation(self) -> Valuation {
        self.valuation
    }

    /// The network cost `w_{u→d}` paid by the transfer.
    pub const fn cost(self) -> Cost {
        self.cost
    }

    /// The welfare contribution `v − w` of this transfer.
    pub fn utility(self) -> Utility {
        self.valuation - self.cost
    }

    /// When the schedule was decided (auction convergence instant).
    pub const fn decision_time(self) -> SimTime {
        self.decided_at
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::VideoId;

    fn sample_request() -> ChunkRequest {
        ChunkRequest::new(PeerId::new(1), PeerId::new(2), ChunkId::new(VideoId::new(0), 3))
    }

    #[test]
    fn request_accessors() {
        let r = sample_request();
        assert_eq!(r.downstream().get(), 1);
        assert_eq!(r.upstream().get(), 2);
        assert_eq!(r.chunk().index_in_video(), 3);
        assert_eq!(r.request_id(), RequestId::new(PeerId::new(1), r.chunk()));
    }

    #[test]
    fn transfer_welfare_is_v_minus_w() {
        let t = ScheduledTransfer::new(sample_request(), Valuation::new(8.0), Cost::new(10.0));
        assert_eq!(t.utility(), Utility::new(-2.0));
    }

    #[test]
    fn transfer_decision_time_defaults_to_zero() {
        let t = ScheduledTransfer::new(sample_request(), Valuation::new(1.0), Cost::new(0.5));
        assert_eq!(t.decision_time(), SimTime::ZERO);
        let t = t.decided_at(SimTime::from_secs_f64(4.0));
        assert_eq!(t.decision_time().as_secs_f64(), 4.0);
    }

    #[test]
    fn request_display_mentions_both_peers() {
        let s = format!("{}", sample_request());
        assert!(s.contains("peer#1") && s.contains("peer#2"));
    }
}
