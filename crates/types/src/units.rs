//! Physical-unit newtypes: bandwidth, network cost, valuation and utility.
//!
//! Costs, valuations and utilities are real-valued (`f64`) quantities that
//! must be totally ordered for the auction's argmax computations. The wrappers
//! here expose `total_cmp`-based comparisons so algorithm code never has to
//! reason about NaN. Constructors reject non-finite values (C-VALIDATE).

use serde::{Deserialize, Serialize};
use std::cmp::Ordering;
use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub, SubAssign};

/// Upload bandwidth of a peer, in *chunks per time slot*.
///
/// This is `B(u)` in the paper: "the number of chunks peer `u` can upload in
/// a time slot (suppose one unit of bandwidth is used to upload one chunk)".
///
/// # Examples
///
/// ```
/// use p2p_types::Bandwidth;
/// let b = Bandwidth::new(400);
/// assert_eq!(b.chunks_per_slot(), 400);
/// assert_eq!((b + Bandwidth::new(100)).chunks_per_slot(), 500);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Bandwidth(u32);

impl Bandwidth {
    /// Zero bandwidth.
    pub const ZERO: Bandwidth = Bandwidth(0);

    /// Creates a bandwidth of `chunks_per_slot` chunk-uploads per slot.
    pub const fn new(chunks_per_slot: u32) -> Self {
        Bandwidth(chunks_per_slot)
    }

    /// Number of chunks this peer can upload in one time slot.
    pub const fn chunks_per_slot(self) -> u32 {
        self.0
    }

    /// Returns `true` if no chunk can be uploaded.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Saturating decrement by one chunk-upload.
    #[must_use]
    pub const fn minus_one_chunk(self) -> Bandwidth {
        Bandwidth(self.0.saturating_sub(1))
    }
}

impl fmt::Display for Bandwidth {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} chunks/slot", self.0)
    }
}

impl Add for Bandwidth {
    type Output = Bandwidth;
    fn add(self, rhs: Bandwidth) -> Bandwidth {
        Bandwidth(self.0 + rhs.0)
    }
}

impl AddAssign for Bandwidth {
    fn add_assign(&mut self, rhs: Bandwidth) {
        self.0 += rhs.0;
    }
}

impl Sum for Bandwidth {
    fn sum<I: Iterator<Item = Bandwidth>>(iter: I) -> Bandwidth {
        Bandwidth(iter.map(|b| b.0).sum())
    }
}

macro_rules! real_unit {
    ($(#[$meta:meta])* $name:ident, $display:literal) => {
        $(#[$meta])*
        #[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
        pub struct $name(f64);

        impl $name {
            /// The zero value.
            pub const ZERO: $name = $name(0.0);

            /// Creates a new value.
            ///
            /// # Panics
            ///
            /// Panics if `value` is NaN or infinite; algorithm code relies on
            /// finite, totally ordered quantities.
            pub fn new(value: f64) -> Self {
                assert!(value.is_finite(), concat!(stringify!($name), " must be finite"));
                $name(value)
            }

            /// Returns the inner `f64`.
            pub const fn get(self) -> f64 {
                self.0
            }

            /// Returns the larger of `self` and `other` under total order.
            #[must_use]
            pub fn max(self, other: $name) -> $name {
                if self >= other { self } else { other }
            }

            /// Returns the smaller of `self` and `other` under total order.
            #[must_use]
            pub fn min(self, other: $name) -> $name {
                if self <= other { self } else { other }
            }

            /// Clamps the value into `[lo, hi]`.
            ///
            /// # Panics
            ///
            /// Panics if `lo > hi`.
            #[must_use]
            pub fn clamp(self, lo: $name, hi: $name) -> $name {
                assert!(lo <= hi, "clamp requires lo <= hi");
                self.max(lo).min(hi)
            }
        }

        impl Eq for $name {}

        impl PartialOrd for $name {
            fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
                Some(self.cmp(other))
            }
        }

        impl Ord for $name {
            fn cmp(&self, other: &Self) -> Ordering {
                self.0.total_cmp(&other.0)
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!("{:.4} ", $display), self.0)
            }
        }

        impl Add for $name {
            type Output = $name;
            fn add(self, rhs: $name) -> $name {
                $name(self.0 + rhs.0)
            }
        }

        impl AddAssign for $name {
            fn add_assign(&mut self, rhs: $name) {
                self.0 += rhs.0;
            }
        }

        impl Sub for $name {
            type Output = $name;
            fn sub(self, rhs: $name) -> $name {
                $name(self.0 - rhs.0)
            }
        }

        impl SubAssign for $name {
            fn sub_assign(&mut self, rhs: $name) {
                self.0 -= rhs.0;
            }
        }

        impl Mul<f64> for $name {
            type Output = $name;
            fn mul(self, rhs: f64) -> $name {
                $name(self.0 * rhs)
            }
        }

        impl Div<f64> for $name {
            type Output = $name;
            fn div(self, rhs: f64) -> $name {
                $name(self.0 / rhs)
            }
        }

        impl Neg for $name {
            type Output = $name;
            fn neg(self) -> $name {
                $name(-self.0)
            }
        }

        impl Sum for $name {
            fn sum<I: Iterator<Item = $name>>(iter: I) -> $name {
                $name(iter.map(|v| v.0).sum())
            }
        }
    };
}

real_unit!(
    /// Network cost `w_{u→d}` of transmitting one chunk from peer `u` to
    /// peer `d`.
    ///
    /// The paper uses network latency as the cost in its evaluation; it "can
    /// represent network latency for sending a chunk between peers, or the
    /// possibility that the chunk is being blocked due to filtering of
    /// egress/ingress P2P traffic at one ISP". Costs differ between pairs of
    /// ISPs (inter-ISP links are substantially more expensive than intra-ISP
    /// links).
    ///
    /// # Examples
    ///
    /// ```
    /// use p2p_types::Cost;
    /// let w = Cost::new(5.0);
    /// assert!(w > Cost::new(1.0));
    /// ```
    Cost,
    "cost"
);

real_unit!(
    /// A peer's valuation `v^{(c)}(d)` for receiving a chunk — the value the
    /// chunk brings to the peer (e.g. a deadline-based urgency value in VoD).
    ///
    /// # Examples
    ///
    /// ```
    /// use p2p_types::{Valuation, Cost};
    /// let v = Valuation::new(8.0);
    /// let u = v - Cost::new(5.0); // net utility v - w
    /// assert_eq!(u.get(), 3.0);
    /// ```
    Valuation,
    "value"
);

real_unit!(
    /// Net utility `v^{(c)}(d) − w_{u→d}` (optionally minus the bandwidth
    /// price `λ_u`). Also used for social welfare totals and dual prices.
    ///
    /// # Examples
    ///
    /// ```
    /// use p2p_types::Utility;
    /// let a = Utility::new(1.5) + Utility::new(0.5);
    /// assert_eq!(a, Utility::new(2.0));
    /// ```
    Utility,
    "util"
);

impl Sub<Cost> for Valuation {
    type Output = Utility;
    /// The paper's net utility of a transfer: `v − w`.
    fn sub(self, rhs: Cost) -> Utility {
        Utility::new(self.0 - rhs.0)
    }
}

impl From<Valuation> for Utility {
    fn from(v: Valuation) -> Utility {
        Utility::new(v.get())
    }
}

impl From<Cost> for Utility {
    fn from(c: Cost) -> Utility {
        Utility::new(c.get())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bandwidth_arithmetic() {
        let b = Bandwidth::new(3) + Bandwidth::new(4);
        assert_eq!(b.chunks_per_slot(), 7);
        assert_eq!(b.minus_one_chunk().chunks_per_slot(), 6);
        assert!(Bandwidth::ZERO.is_zero());
        assert_eq!(Bandwidth::ZERO.minus_one_chunk(), Bandwidth::ZERO);
        let total: Bandwidth = vec![Bandwidth::new(1), Bandwidth::new(2)].into_iter().sum();
        assert_eq!(total, Bandwidth::new(3));
    }

    #[test]
    fn utility_is_valuation_minus_cost() {
        let u = Valuation::new(8.0) - Cost::new(5.5);
        assert_eq!(u, Utility::new(2.5));
    }

    #[test]
    fn negative_utilities_are_representable() {
        let u = Valuation::new(0.8) - Cost::new(10.0);
        assert!(u < Utility::ZERO);
        assert_eq!(-u, Utility::new(9.2));
    }

    #[test]
    fn total_order_and_minmax() {
        let a = Cost::new(1.0);
        let b = Cost::new(2.0);
        assert_eq!(a.max(b), b);
        assert_eq!(a.min(b), a);
        assert_eq!(Cost::new(5.0).clamp(a, b), b);
        assert_eq!(Cost::new(1.5).clamp(a, b), Cost::new(1.5));
    }

    #[test]
    #[should_panic(expected = "must be finite")]
    fn nan_rejected() {
        let _ = Cost::new(f64::NAN);
    }

    #[test]
    #[should_panic(expected = "must be finite")]
    fn infinity_rejected() {
        let _ = Valuation::new(f64::INFINITY);
    }

    #[test]
    fn sums_and_scaling() {
        let total: Utility = vec![Utility::new(1.0), Utility::new(2.5)].into_iter().sum();
        assert_eq!(total, Utility::new(3.5));
        assert_eq!(Utility::new(2.0) * 3.0, Utility::new(6.0));
        assert_eq!(Utility::new(6.0) / 3.0, Utility::new(2.0));
    }

    #[test]
    fn display_is_nonempty() {
        assert!(!format!("{}", Cost::new(1.0)).is_empty());
        assert!(!format!("{}", Bandwidth::new(5)).is_empty());
        assert!(!format!("{}", Utility::new(0.0)).is_empty());
    }
}
