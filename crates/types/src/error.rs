//! Error types shared across the workspace.

use crate::ids::{ChunkId, PeerId, VideoId};
use std::error::Error as StdError;
use std::fmt;

/// Convenience alias used by public APIs across the workspace.
pub type Result<T> = std::result::Result<T, P2pError>;

/// Errors surfaced by the P2P system crates.
///
/// # Examples
///
/// ```
/// use p2p_types::{P2pError, PeerId};
/// let err = P2pError::UnknownPeer(PeerId::new(9));
/// assert!(err.to_string().contains("peer#9"));
/// ```
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum P2pError {
    /// A peer id was not found in the registry it was used against.
    UnknownPeer(PeerId),
    /// A video id was not found in the catalog.
    UnknownVideo(VideoId),
    /// A chunk index exceeds the video's chunk count.
    UnknownChunk(ChunkId),
    /// A configuration value failed validation.
    InvalidConfig {
        /// Name of the offending parameter.
        field: &'static str,
        /// Human-readable description of the violation.
        reason: String,
    },
    /// The auction failed to converge within its iteration budget.
    AuctionDiverged {
        /// Number of iterations executed before giving up.
        iterations: u64,
    },
    /// A solver was handed an inconsistent instance (e.g. an edge referring
    /// to a provider index that does not exist).
    MalformedInstance(String),
    /// An edge carried a NaN or infinite welfare weight `v − w`. Non-finite
    /// utilities poison the bidder's argmax comparisons (every ordering of
    /// a NaN compares false) and the kernel's lane reductions, so builders
    /// reject them at construction time.
    NonFiniteUtility {
        /// The request (row) the edge belongs to.
        request: u32,
        /// The provider the edge points at.
        provider: u32,
        /// The offending `v − w` value.
        utility: f64,
    },
    /// A wall-clock deadline expired before the operation finished (the
    /// threaded runtime's analogue of [`P2pError::AuctionDiverged`], which
    /// reports round-budget exhaustion in the synchronous engines).
    Timeout {
        /// How long the operation ran before giving up.
        elapsed: std::time::Duration,
        /// Progress made before the deadline — protocol messages delivered,
        /// for the threaded runtime.
        messages: u64,
    },
    /// A worker thread panicked; the panic payload is propagated instead of
    /// silently hanging the run.
    WorkerPanicked {
        /// The panic message (payload rendered to text).
        message: String,
    },
    /// A wire frame or payload ended before its declared contents did
    /// (truncated read, short frame, or a length prefix pointing past the
    /// available bytes). Decoders return this instead of panicking so a
    /// malicious or corrupted peer cannot crash the process.
    WireTruncated {
        /// Bytes the decoder needed to make progress.
        expected: usize,
        /// Bytes actually available.
        actual: usize,
    },
    /// A wire frame announced a protocol version this build does not speak.
    WireVersion {
        /// The version byte found on the wire.
        found: u8,
        /// The version this build encodes and accepts.
        supported: u8,
    },
    /// A wire frame was structurally invalid beyond truncation: unknown
    /// message tag, oversized length prefix, trailing garbage after a
    /// complete payload, or a field value outside its domain.
    WireMalformed {
        /// What exactly was wrong with the bytes.
        reason: String,
    },
    /// The remote end of a connection went away mid-protocol (EOF or a
    /// reset while a reply was still owed) — the networked runtime's
    /// peer-crash signal, distinct from [`P2pError::Timeout`] which covers
    /// a silent peer whose socket is still open.
    Disconnected {
        /// What the connection was doing when it died.
        context: String,
    },
    /// Every connection attempt within the configured retry/backoff budget
    /// failed — the networked runtime's tracker-unavailable signal.
    ConnectFailed {
        /// The address dialed.
        addr: String,
        /// Attempts made before giving up.
        attempts: u32,
        /// The last attempt's error, rendered to text.
        last_error: String,
    },
}

impl fmt::Display for P2pError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            P2pError::UnknownPeer(p) => write!(f, "unknown {p}"),
            P2pError::UnknownVideo(v) => write!(f, "unknown {v}"),
            P2pError::UnknownChunk(c) => write!(f, "unknown chunk {c}"),
            P2pError::InvalidConfig { field, reason } => {
                write!(f, "invalid configuration for `{field}`: {reason}")
            }
            P2pError::AuctionDiverged { iterations } => {
                write!(f, "auction failed to converge after {iterations} iterations")
            }
            P2pError::MalformedInstance(msg) => write!(f, "malformed instance: {msg}"),
            P2pError::NonFiniteUtility { request, provider, utility } => {
                write!(
                    f,
                    "non-finite utility {utility} on the edge from request {request} \
                     to provider {provider}"
                )
            }
            P2pError::Timeout { elapsed, messages } => {
                write!(
                    f,
                    "timed out after {:.3}s with {messages} messages delivered",
                    elapsed.as_secs_f64()
                )
            }
            P2pError::WorkerPanicked { message } => {
                write!(f, "worker thread panicked: {message}")
            }
            P2pError::WireTruncated { expected, actual } => {
                write!(f, "truncated wire data: needed {expected} bytes, got {actual}")
            }
            P2pError::WireVersion { found, supported } => {
                write!(f, "unsupported wire version {found} (this build speaks {supported})")
            }
            P2pError::WireMalformed { reason } => write!(f, "malformed wire data: {reason}"),
            P2pError::Disconnected { context } => {
                write!(f, "connection lost: {context}")
            }
            P2pError::ConnectFailed { addr, attempts, last_error } => {
                write!(f, "failed to connect to {addr} after {attempts} attempts: {last_error}")
            }
        }
    }
}

impl StdError for P2pError {}

impl P2pError {
    /// Shorthand for an [`P2pError::InvalidConfig`] value.
    pub fn invalid_config(field: &'static str, reason: impl Into<String>) -> Self {
        P2pError::InvalidConfig { field, reason: reason.into() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_are_send_sync_static() {
        fn assert_bounds<T: StdError + Send + Sync + 'static>() {}
        assert_bounds::<P2pError>();
    }

    #[test]
    fn messages_are_lowercase_without_trailing_punctuation() {
        let samples = [
            P2pError::UnknownPeer(PeerId::new(1)).to_string(),
            P2pError::invalid_config("neighbors", "must be positive").to_string(),
            P2pError::AuctionDiverged { iterations: 5 }.to_string(),
            P2pError::MalformedInstance("edge out of range".into()).to_string(),
            P2pError::NonFiniteUtility { request: 3, provider: 1, utility: f64::NAN }.to_string(),
            P2pError::Timeout { elapsed: std::time::Duration::from_millis(1500), messages: 12 }
                .to_string(),
            P2pError::WorkerPanicked { message: "boom".into() }.to_string(),
            P2pError::WireTruncated { expected: 8, actual: 3 }.to_string(),
            P2pError::WireVersion { found: 9, supported: 1 }.to_string(),
            P2pError::WireMalformed { reason: "unknown tag 77".into() }.to_string(),
            P2pError::Disconnected { context: "awaiting a bid reply".into() }.to_string(),
            P2pError::ConnectFailed {
                addr: "127.0.0.1:9".into(),
                attempts: 4,
                last_error: "connection refused".into(),
            }
            .to_string(),
        ];
        for s in samples {
            assert!(!s.ends_with('.'), "{s}");
            assert!(s.chars().next().unwrap().is_lowercase(), "{s}");
        }
    }

    #[test]
    fn invalid_config_formats_field() {
        let e = P2pError::invalid_config("isp_count", "must be at least 1");
        assert!(e.to_string().contains("isp_count"));
    }
}
