//! Simulated time.
//!
//! The system "works in a time slotted fashion over t = 0, 1, 2, …, T".
//! Within a slot, the auction exchanges messages whose latency we model at
//! sub-second resolution, so [`SimTime`] is an integer count of microseconds
//! since simulation start: exact, totally ordered and deterministic (no
//! floating-point drift in the event queue).

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A point in simulated time, in integer microseconds since start.
///
/// # Examples
///
/// ```
/// use p2p_types::{SimTime, SimDuration};
/// let t = SimTime::ZERO + SimDuration::from_secs_f64(1.5);
/// assert_eq!(t.as_secs_f64(), 1.5);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimTime(u64);

impl SimTime {
    /// The simulation epoch (t = 0).
    pub const ZERO: SimTime = SimTime(0);

    /// Creates a time from integer microseconds.
    pub const fn from_micros(micros: u64) -> Self {
        SimTime(micros)
    }

    /// Creates a time from (possibly fractional) seconds.
    ///
    /// # Panics
    ///
    /// Panics if `secs` is negative or not finite.
    pub fn from_secs_f64(secs: f64) -> Self {
        assert!(secs.is_finite() && secs >= 0.0, "time must be finite and non-negative");
        SimTime((secs * 1e6).round() as u64)
    }

    /// Microseconds since simulation start.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Seconds since simulation start.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Duration elapsed since `earlier`, saturating at zero.
    pub fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// The index of the time slot containing this instant, for a given slot
    /// length.
    ///
    /// # Panics
    ///
    /// Panics if `slot_len` is zero.
    pub fn slot(self, slot_len: SimDuration) -> SlotIndex {
        assert!(slot_len.0 > 0, "slot length must be positive");
        SlotIndex(self.0 / slot_len.0)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={:.3}s", self.as_secs_f64())
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        self.since(rhs)
    }
}

/// A span of simulated time, in integer microseconds.
///
/// # Examples
///
/// ```
/// use p2p_types::SimDuration;
/// let d = SimDuration::from_millis(250) * 4;
/// assert_eq!(d.as_secs_f64(), 1.0);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimDuration(u64);

impl SimDuration {
    /// The zero duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Creates a duration from integer microseconds.
    pub const fn from_micros(micros: u64) -> Self {
        SimDuration(micros)
    }

    /// Creates a duration from integer milliseconds.
    pub const fn from_millis(millis: u64) -> Self {
        SimDuration(millis * 1_000)
    }

    /// Creates a duration from integer seconds.
    pub const fn from_secs(secs: u64) -> Self {
        SimDuration(secs * 1_000_000)
    }

    /// Creates a duration from fractional seconds.
    ///
    /// # Panics
    ///
    /// Panics if `secs` is negative or not finite.
    pub fn from_secs_f64(secs: f64) -> Self {
        assert!(secs.is_finite() && secs >= 0.0, "duration must be finite and non-negative");
        SimDuration((secs * 1e6).round() as u64)
    }

    /// Microseconds in this duration.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Seconds in this duration.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Returns `true` if the duration is zero.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}s", self.as_secs_f64())
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl std::ops::Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 * rhs)
    }
}

/// Index of a time slot (the paper's `t = 0, 1, 2, …, T`).
///
/// # Examples
///
/// ```
/// use p2p_types::{SlotIndex, SimDuration, SimTime};
/// let slot = SimTime::from_secs_f64(25.0).slot(SimDuration::from_secs(10));
/// assert_eq!(slot, SlotIndex::new(2));
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SlotIndex(u64);

impl SlotIndex {
    /// Creates a slot index.
    pub const fn new(raw: u64) -> Self {
        SlotIndex(raw)
    }

    /// Returns the raw index.
    pub const fn get(self) -> u64 {
        self.0
    }

    /// The next slot.
    pub const fn next(self) -> SlotIndex {
        SlotIndex(self.0 + 1)
    }

    /// The simulated instant at which this slot starts.
    pub fn start(self, slot_len: SimDuration) -> SimTime {
        SimTime(self.0 * slot_len.as_micros())
    }
}

impl fmt::Display for SlotIndex {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "slot#{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_roundtrips_through_seconds() {
        let t = SimTime::from_secs_f64(123.456789);
        assert!((t.as_secs_f64() - 123.456789).abs() < 1e-6);
    }

    #[test]
    fn duration_arithmetic() {
        let d = SimDuration::from_secs(2) + SimDuration::from_millis(500);
        assert_eq!(d.as_secs_f64(), 2.5);
        assert_eq!((d * 2).as_secs_f64(), 5.0);
        assert!(SimDuration::ZERO.is_zero());
    }

    #[test]
    fn time_add_duration() {
        let mut t = SimTime::ZERO + SimDuration::from_secs(1);
        t += SimDuration::from_millis(500);
        assert_eq!(t.as_secs_f64(), 1.5);
    }

    #[test]
    fn since_saturates() {
        let a = SimTime::from_secs_f64(1.0);
        let b = SimTime::from_secs_f64(2.0);
        assert_eq!(a.since(b), SimDuration::ZERO);
        assert_eq!(b.since(a), SimDuration::from_secs(1));
        assert_eq!(b - a, SimDuration::from_secs(1));
    }

    #[test]
    fn slot_boundaries() {
        let slot_len = SimDuration::from_secs(10);
        assert_eq!(SimTime::from_secs_f64(0.0).slot(slot_len), SlotIndex::new(0));
        assert_eq!(SimTime::from_secs_f64(9.999999).slot(slot_len), SlotIndex::new(0));
        assert_eq!(SimTime::from_secs_f64(10.0).slot(slot_len), SlotIndex::new(1));
        assert_eq!(SlotIndex::new(3).start(slot_len), SimTime::from_secs_f64(30.0));
        assert_eq!(SlotIndex::new(3).next(), SlotIndex::new(4));
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_time_rejected() {
        let _ = SimTime::from_secs_f64(-1.0);
    }

    #[test]
    #[should_panic(expected = "slot length must be positive")]
    fn zero_slot_len_rejected() {
        let _ = SimTime::ZERO.slot(SimDuration::ZERO);
    }
}
