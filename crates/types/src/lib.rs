//! Core vocabulary types for the ISP-aware P2P auction system.
//!
//! This crate defines the identifiers, physical units, request tuples and
//! error types shared by every other crate in the workspace. Everything here
//! is deliberately small, `Copy` where possible, and free of behaviour beyond
//! validation and conversion, following the newtype guidance of the Rust API
//! guidelines (C-NEWTYPE).
//!
//! # Examples
//!
//! ```
//! use p2p_types::{PeerId, ChunkId, VideoId, Cost, Valuation};
//!
//! let d = PeerId::new(7);
//! let chunk = ChunkId::new(VideoId::new(3), 120);
//! let utility = Valuation::new(4.0) - Cost::new(1.5);
//! assert!(utility.get() > 2.4);
//! assert_eq!(chunk.video(), VideoId::new(3));
//! assert_eq!(d.get(), 7);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod error;
pub mod ids;
pub mod request;
pub mod time;
pub mod units;

pub use error::{P2pError, Result};
pub use ids::{ChunkId, IspId, PeerId, RequestId, VideoId};
pub use request::{ChunkRequest, ScheduledTransfer};
pub use time::{SimDuration, SimTime, SlotIndex};
pub use units::{Bandwidth, Cost, Utility, Valuation};
