//! Networked-runtime scheduler: each slot's auction runs over real TCP.
//!
//! [`NetAuctionScheduler`] drives [`p2p_net::run_slot_local`] — a tracker
//! plus `peers` peer actors exchanging the length-prefixed wire protocol
//! over loopback sockets — instead of the in-process sweep the other
//! auction schedulers use. The default [`NetConfig`] ships the batched
//! wire-version-2 protocol (one `PollBatch` frame per peer per sweep
//! round); the tracker still replays the same synchronous
//! Gauss–Seidel sweep, so outcomes are bit-identical to
//! [`AuctionScheduler`](crate::AuctionScheduler) /
//! `FlatAuctionScheduler` at one shard: same assignment, same duals, same
//! round and bid counts, same `n·ε` certificate.
//!
//! This scheduler exists to certify the transport inside end-to-end
//! scenario runs: any drift between the wire protocol and the reference
//! engines shows up as a diverging figure, not a silent regression.

use crate::auction::{schedule_with_carry, PriceCarry};
use crate::problem::{Schedule, SlotProblem};
use crate::ChunkScheduler;
use p2p_core::NoProbe;
use p2p_metrics::{CountingProbe, EngineReport};
use p2p_net::{run_slot_local, NetConfig};
use p2p_types::Result;

/// Schedules each slot by running the auction over loopback TCP.
///
/// With [`warm_start`](NetAuctionScheduler::warm_start) enabled, carries
/// the previous slot's final prices across slots exactly like the other
/// auction schedulers (shared [`PriceCarry`] protocol, including the CS 1
/// repair loop), so warm-start semantics cannot drift between transports.
///
/// # Examples
///
/// ```
/// use p2p_sched::{ChunkScheduler, NetAuctionScheduler, SlotProblem};
/// use p2p_core::WelfareInstance;
/// use p2p_types::*;
///
/// let mut b = WelfareInstance::builder();
/// let u = b.add_provider(PeerId::new(1), 1);
/// let r = b.add_request(RequestId::new(PeerId::new(0), ChunkId::new(VideoId::new(0), 0)));
/// b.add_edge(r, u, Valuation::new(4.0), Cost::new(1.0)).unwrap();
/// let problem = SlotProblem::new(b.build().unwrap(), vec![SimDuration::from_secs(5)]).unwrap();
///
/// let mut sched = NetAuctionScheduler::paper(2);
/// let schedule = sched.schedule(&problem).unwrap();
/// assert_eq!(schedule.assignment.assigned_count(), 1);
/// ```
#[derive(Debug)]
pub struct NetAuctionScheduler {
    config: NetConfig,
    peers: usize,
    warm_start: bool,
    prior: PriceCarry,
    probe: Option<CountingProbe>,
}

impl NetAuctionScheduler {
    /// Networked auction with the paper's ε = 0 rule and `peers` peer
    /// actors (clamped to at least one).
    pub fn paper(peers: usize) -> Self {
        NetAuctionScheduler {
            config: NetConfig::default(),
            peers: peers.max(1),
            warm_start: false,
            prior: PriceCarry::default(),
            probe: None,
        }
    }

    /// Networked auction with a minimum bid increment ε > 0.
    pub fn with_epsilon(epsilon: f64, peers: usize) -> Self {
        NetAuctionScheduler {
            config: NetConfig { epsilon, ..NetConfig::default() },
            ..Self::paper(peers)
        }
    }

    /// Overrides the transport configuration (timeouts, heartbeats).
    #[must_use]
    pub fn with_config(mut self, config: NetConfig) -> Self {
        self.config = config;
        self
    }

    /// Enables cross-slot price carrying (see the type-level docs).
    #[must_use]
    pub fn warm_start(mut self) -> Self {
        self.warm_start = true;
        self
    }

    /// Whether warm-starting is enabled.
    pub fn is_warm_start(&self) -> bool {
        self.warm_start
    }

    /// The number of peer actors each slot's swarm is partitioned over.
    pub fn peers(&self) -> usize {
        self.peers
    }
}

impl ChunkScheduler for NetAuctionScheduler {
    fn name(&self) -> &str {
        if self.warm_start {
            "auction_net_warm"
        } else {
            "auction_net"
        }
    }

    fn schedule(&mut self, problem: &SlotProblem) -> Result<Schedule> {
        let (config, peers) = (&self.config, self.peers);
        schedule_with_carry(
            problem,
            self.warm_start,
            &mut self.prior,
            &mut self.probe,
            |instance, probe| match probe {
                Some(p) => run_slot_local(instance, peers, config, None, p),
                None => run_slot_local(instance, peers, config, None, &mut NoProbe),
            },
            |instance, prices, probe| match probe {
                Some(p) => run_slot_local(instance, peers, config, Some(prices), p),
                None => run_slot_local(instance, peers, config, Some(prices), &mut NoProbe),
            },
        )
    }

    fn set_probes(&mut self, enabled: bool) {
        self.probe = enabled.then(CountingProbe::new);
    }

    fn take_probe_report(&mut self) -> Option<EngineReport> {
        self.probe.as_mut().map(CountingProbe::take_report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::auction::tests::{problem, single_provider_problem};
    use crate::AuctionScheduler;

    #[test]
    fn names_distinguish_warm_start() {
        assert_eq!(NetAuctionScheduler::paper(3).name(), "auction_net");
        assert_eq!(NetAuctionScheduler::paper(3).warm_start().name(), "auction_net_warm");
    }

    #[test]
    fn zero_peers_clamps_to_one() {
        assert_eq!(NetAuctionScheduler::paper(0).peers(), 1);
    }

    #[test]
    fn networked_slots_match_the_sync_scheduler_slot_by_slot() {
        let mut net = NetAuctionScheduler::paper(3);
        let mut sync = AuctionScheduler::paper();
        for slot in 0..3 {
            let p = problem();
            let a = net.schedule(&p).unwrap();
            let b = sync.schedule(&p).unwrap();
            assert_eq!(a.assignment, b.assignment, "slot {slot}");
            assert_eq!(a.stats, b.stats, "slot {slot}");
        }
    }

    #[test]
    fn warm_start_carries_prices_like_the_sync_scheduler() {
        let mut net = NetAuctionScheduler::with_epsilon(0.01, 2).warm_start();
        let mut sync = AuctionScheduler::with_epsilon(0.01).warm_start();
        let p = single_provider_problem(1, 2, 5.0);
        for slot in 0..3 {
            let a = net.schedule(&p).unwrap();
            let b = sync.schedule(&p).unwrap();
            assert_eq!(a.assignment, b.assignment, "slot {slot}");
            assert_eq!(a.stats, b.stats, "slot {slot}");
        }
        assert!(net.is_warm_start());
    }

    #[test]
    fn probe_reports_flow_through() {
        let mut net = NetAuctionScheduler::paper(2);
        net.set_probes(true);
        net.schedule(&problem()).unwrap();
        let report = net.take_probe_report().unwrap();
        assert!(report.rounds > 0);
        assert!(report.bids > 0);
    }
}
