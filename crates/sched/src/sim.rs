//! Virtual-time swarm scheduler: each slot's auction runs as a
//! discrete-event simulation of the peer swarm.
//!
//! [`SimAuctionScheduler`] drives [`p2p_core::SwarmAuction`] — one logical
//! actor per peer on the DES event queue, message behavior drawn from a
//! seeded [`NetworkModel`] — instead of the in-process sweep the other
//! auction schedulers use. Under [`NetworkModel::ideal`] the outcome is
//! bit-identical to [`AuctionScheduler`](crate::AuctionScheduler) /
//! `FlatAuctionScheduler` at one shard; under faulty models (`lan`,
//! `lossy`, partitions) it exercises the paper's protocol against drops,
//! delays, reordering and duplication while preserving the `n·ε`
//! optimality certificate through eventual delivery.
//!
//! The scheduler is single-threaded and derives every slot's fault
//! schedule from `derive_seed(seed, slot_index)`, so runs are byte-for-byte
//! reproducible regardless of `P2P_CORES`. It reports the swarm's
//! convergence time through
//! [`ChunkScheduler::take_virtual_elapsed`](crate::ChunkScheduler::take_virtual_elapsed),
//! which the streaming system uses to report virtual (not wall-clock)
//! schedule-phase durations.

use crate::auction::{schedule_with_carry, PriceCarry};
use crate::problem::{Schedule, SlotProblem};
use crate::ChunkScheduler;
use p2p_core::{derive_seed, NetworkModel, SwarmAuction, SwarmConfig};
use p2p_metrics::{CountingProbe, EngineReport};
use p2p_types::Result;

/// Schedules each slot by simulating the peer swarm in virtual time.
///
/// With [`warm_start`](SimAuctionScheduler::warm_start) enabled, carries
/// the previous slot's final prices across slots exactly like the other
/// auction schedulers (shared [`PriceCarry`] protocol, including the CS 1
/// repair loop), so warm-start semantics cannot drift between transports.
///
/// # Examples
///
/// ```
/// use p2p_sched::{ChunkScheduler, SimAuctionScheduler, SlotProblem};
/// use p2p_core::{NetworkModel, WelfareInstance};
/// use p2p_types::*;
///
/// let mut b = WelfareInstance::builder();
/// let u = b.add_provider(PeerId::new(1), 1);
/// let r = b.add_request(RequestId::new(PeerId::new(0), ChunkId::new(VideoId::new(0), 0)));
/// b.add_edge(r, u, Valuation::new(4.0), Cost::new(1.0)).unwrap();
/// let problem = SlotProblem::new(b.build().unwrap(), vec![SimDuration::from_secs(5)]).unwrap();
///
/// let mut sched = SimAuctionScheduler::paper(NetworkModel::ideal());
/// let schedule = sched.schedule(&problem).unwrap();
/// assert_eq!(schedule.assignment.assigned_count(), 1);
/// assert!(sched.take_virtual_elapsed().is_some());
/// ```
#[derive(Debug, Clone)]
pub struct SimAuctionScheduler {
    engine: SwarmAuction,
    warm_start: bool,
    prior: PriceCarry,
    probe: Option<CountingProbe>,
    seed: u64,
    slots: u64,
    virtual_elapsed: Option<f64>,
}

impl SimAuctionScheduler {
    /// Swarm auction with the paper's ε = 0 rule on the given network.
    ///
    /// ε = 0 is only safe under [`NetworkModel::ideal`]-like models; lossy
    /// networks should use [`with_epsilon`](Self::with_epsilon) so the
    /// minimum bid increment bounds the message volume.
    pub fn paper(net: NetworkModel) -> Self {
        SimAuctionScheduler {
            engine: SwarmAuction::new(SwarmConfig::paper(), net),
            warm_start: false,
            prior: PriceCarry::default(),
            probe: None,
            seed: 0,
            slots: 0,
            virtual_elapsed: None,
        }
    }

    /// Swarm auction with a minimum bid increment ε > 0.
    pub fn with_epsilon(epsilon: f64, net: NetworkModel) -> Self {
        SimAuctionScheduler {
            engine: SwarmAuction::new(SwarmConfig::with_epsilon(epsilon), net.clone()),
            ..Self::paper(net)
        }
    }

    /// Sets the base seed the per-slot fault schedules derive from.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Enables cross-slot price carrying (see the type-level docs).
    #[must_use]
    pub fn warm_start(mut self) -> Self {
        self.warm_start = true;
        self
    }

    /// Whether warm-starting is enabled.
    pub fn is_warm_start(&self) -> bool {
        self.warm_start
    }

    /// The network model the swarm runs on.
    pub fn net(&self) -> &NetworkModel {
        self.engine.net()
    }
}

impl ChunkScheduler for SimAuctionScheduler {
    fn name(&self) -> &str {
        if self.warm_start {
            "auction_sim_warm"
        } else {
            "auction_sim"
        }
    }

    fn schedule(&mut self, problem: &SlotProblem) -> Result<Schedule> {
        // One seed stream per slot: replaying a scenario replays every
        // slot's fault schedule, and slot k's faults are independent of
        // how many events slot k-1 happened to process.
        let slot_seed = derive_seed(self.seed, self.slots);
        self.slots += 1;
        let engine = &self.engine;
        // Cell, not `let mut`: both the cold and warm closure need to write
        // it, and only one of them ever runs.
        let elapsed = std::cell::Cell::new(0.0_f64);
        let schedule = schedule_with_carry(
            problem,
            self.warm_start,
            &mut self.prior,
            &mut self.probe,
            |instance, probe| {
                let out = match probe {
                    Some(p) => engine.run_probed(instance, slot_seed, p)?,
                    None => engine.run(instance, slot_seed)?,
                };
                elapsed.set(out.converged_at.as_secs_f64());
                Ok(out.to_outcome())
            },
            |instance, prices, probe| {
                let out = match probe {
                    Some(p) => engine.run_warm_probed(instance, prices, slot_seed, p)?,
                    None => engine.run_warm(instance, prices, slot_seed)?,
                };
                elapsed.set(out.converged_at.as_secs_f64());
                Ok(out.to_outcome())
            },
        )?;
        self.virtual_elapsed = Some(elapsed.get());
        Ok(schedule)
    }

    fn set_probes(&mut self, enabled: bool) {
        self.probe = enabled.then(CountingProbe::new);
    }

    fn take_probe_report(&mut self) -> Option<EngineReport> {
        self.probe.as_mut().map(CountingProbe::take_report)
    }

    fn take_virtual_elapsed(&mut self) -> Option<f64> {
        self.virtual_elapsed.take()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::auction::tests::{problem, single_provider_problem};
    use crate::AuctionScheduler;

    #[test]
    fn names_distinguish_warm_start() {
        let net = NetworkModel::ideal();
        assert_eq!(SimAuctionScheduler::paper(net.clone()).name(), "auction_sim");
        assert_eq!(SimAuctionScheduler::paper(net).warm_start().name(), "auction_sim_warm");
    }

    #[test]
    fn ideal_sim_matches_the_sync_scheduler_slot_by_slot() {
        let mut sim = SimAuctionScheduler::paper(NetworkModel::ideal()).with_seed(7);
        let mut sync = AuctionScheduler::paper();
        for slot in 0..4 {
            let p = problem();
            let a = sim.schedule(&p).unwrap();
            let b = sync.schedule(&p).unwrap();
            assert_eq!(a.assignment, b.assignment, "slot {slot}");
            assert_eq!(a.stats, b.stats, "slot {slot}");
        }
    }

    #[test]
    fn warm_start_carries_prices_like_the_sync_scheduler() {
        let mut sim = SimAuctionScheduler::with_epsilon(0.01, NetworkModel::ideal())
            .warm_start()
            .with_seed(3);
        let mut sync = AuctionScheduler::with_epsilon(0.01).warm_start();
        let p = single_provider_problem(1, 2, 5.0);
        for slot in 0..3 {
            let a = sim.schedule(&p).unwrap();
            let b = sync.schedule(&p).unwrap();
            assert_eq!(a.assignment, b.assignment, "slot {slot}");
            assert_eq!(a.stats, b.stats, "slot {slot}");
        }
        // The carry kicks in after slot 0: later slots start at equilibrium.
        assert!(sim.is_warm_start());
    }

    #[test]
    fn lossy_sim_still_fills_the_slot() {
        let mut sim = SimAuctionScheduler::with_epsilon(0.01, NetworkModel::lossy()).with_seed(11);
        let p = problem();
        let schedule = sim.schedule(&p).unwrap();
        assert!(schedule.assignment.assigned_count() > 0);
        assert!(sim.take_virtual_elapsed().unwrap() > 0.0);
    }

    #[test]
    fn virtual_elapsed_is_taken_once_per_slot() {
        let mut sim = SimAuctionScheduler::paper(NetworkModel::ideal());
        assert!(sim.take_virtual_elapsed().is_none());
        sim.schedule(&problem()).unwrap();
        assert!(sim.take_virtual_elapsed().is_some());
        assert!(sim.take_virtual_elapsed().is_none());
    }

    #[test]
    fn probe_reports_flow_through() {
        let mut sim = SimAuctionScheduler::paper(NetworkModel::ideal());
        sim.set_probes(true);
        sim.schedule(&problem()).unwrap();
        let report = sim.take_probe_report().unwrap();
        assert!(report.rounds > 0);
        assert!(report.bids > 0);
    }

    #[test]
    fn same_seed_same_schedule_distinct_seeds_may_differ() {
        let p = problem();
        let run = |seed: u64| {
            let mut s =
                SimAuctionScheduler::with_epsilon(0.01, NetworkModel::lossy()).with_seed(seed);
            let sched = s.schedule(&p).unwrap();
            (sched.assignment, sched.stats)
        };
        assert_eq!(run(42), run(42));
    }
}
