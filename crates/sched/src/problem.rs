//! The slot-level scheduling problem and schedule types.

use p2p_core::{Assignment, CsrInstance, WelfareInstance};
use p2p_types::{P2pError, SimDuration, Utility};

/// One slot's scheduling problem: the welfare instance plus the per-request
/// urgency information the locality baseline needs (the auction uses only
/// the valuations already embedded in the instance).
#[derive(Debug, Clone)]
pub struct SlotProblem {
    /// The welfare-maximization instance (problem (1)).
    pub instance: WelfareInstance,
    /// Per request: time to the chunk's playback deadline at slot start.
    pub urgency: Vec<SimDuration>,
    /// The instance's flat CSR compilation, when the builder produced one
    /// (the incremental slot-problem cache emits it directly). A derived
    /// cache: always equal to `CsrInstance::compile(&instance)`, excluded
    /// from `PartialEq`, and compiled on demand by
    /// [`SlotProblem::csr_instance`] when absent.
    pub csr: Option<CsrInstance>,
}

/// Equality is over the logical problem (instance + urgencies); the CSR
/// field is a derived compilation and carries no extra information.
impl PartialEq for SlotProblem {
    fn eq(&self, other: &Self) -> bool {
        self.instance == other.instance && self.urgency == other.urgency
    }
}

impl SlotProblem {
    /// Bundles an instance with per-request urgencies.
    ///
    /// # Errors
    ///
    /// Returns [`P2pError::MalformedInstance`] if `urgency` does not have
    /// exactly one entry per request.
    pub fn new(instance: WelfareInstance, urgency: Vec<SimDuration>) -> Result<Self, P2pError> {
        if urgency.len() != instance.request_count() {
            return Err(P2pError::MalformedInstance(format!(
                "{} urgencies for {} requests",
                urgency.len(),
                instance.request_count()
            )));
        }
        Ok(SlotProblem { instance, urgency, csr: None })
    }

    /// Attaches a pre-built CSR compilation (builder-style). Debug builds
    /// assert it matches the instance.
    #[must_use]
    pub fn with_csr(mut self, csr: CsrInstance) -> Self {
        debug_assert!(csr.matches(&self.instance), "attached CSR diverges from the instance");
        self.csr = Some(csr);
        self
    }

    /// The flat CSR compilation: the attached one when present (an `Arc`
    /// bump), otherwise compiled on the spot.
    pub fn csr_instance(&self) -> CsrInstance {
        match &self.csr {
            Some(csr) => csr.clone(),
            None => CsrInstance::compile(&self.instance),
        }
    }

    /// Number of requests.
    pub fn request_count(&self) -> usize {
        self.instance.request_count()
    }
}

/// Diagnostics of a scheduling run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ScheduleStats {
    /// Auction rounds (0 for one-shot schedulers).
    pub rounds: u64,
    /// Bids/proposals processed.
    pub bids: u64,
}

/// The outcome of scheduling one slot.
#[derive(Debug, Clone, PartialEq)]
pub struct Schedule {
    /// Which edge each request downloads over (if any).
    pub assignment: Assignment,
    /// Run diagnostics.
    pub stats: ScheduleStats,
}

impl Schedule {
    /// The social welfare of this schedule.
    pub fn welfare(&self, problem: &SlotProblem) -> Utility {
        self.assignment.welfare(&problem.instance)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use p2p_types::{ChunkId, Cost, PeerId, RequestId, Valuation, VideoId};

    fn one_request_problem() -> SlotProblem {
        let mut b = WelfareInstance::builder();
        let u = b.add_provider(PeerId::new(1), 1);
        let r = b.add_request(RequestId::new(PeerId::new(0), ChunkId::new(VideoId::new(0), 0)));
        b.add_edge(r, u, Valuation::new(4.0), Cost::new(1.0)).unwrap();
        SlotProblem::new(b.build().unwrap(), vec![SimDuration::from_secs(1)]).unwrap()
    }

    #[test]
    fn urgency_length_validated() {
        let mut b = WelfareInstance::builder();
        b.add_request(RequestId::new(PeerId::new(0), ChunkId::new(VideoId::new(0), 0)));
        let inst = b.build().unwrap();
        assert!(SlotProblem::new(inst, vec![]).is_err());
    }

    #[test]
    fn csr_attachment_is_a_transparent_cache() {
        let p = one_request_problem();
        let compiled = p.csr_instance();
        assert!(compiled.matches(&p.instance));
        let with = p.clone().with_csr(compiled.clone());
        // Equality ignores the derived CSR field...
        assert_eq!(with, p);
        // ...and the attached compilation is returned by reference-bump.
        assert_eq!(with.csr_instance(), compiled);
        assert!(std::ptr::eq(with.csr_instance().data(), with.csr.as_ref().unwrap().data()));
    }

    #[test]
    fn schedule_welfare_delegates_to_assignment() {
        let p = one_request_problem();
        let s = Schedule {
            assignment: Assignment::new(vec![Some(0)]),
            stats: ScheduleStats::default(),
        };
        assert_eq!(s.welfare(&p), Utility::new(3.0));
        assert_eq!(p.request_count(), 1);
    }
}
