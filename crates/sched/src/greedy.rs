//! Centralized global-greedy heuristic.

use crate::problem::{Schedule, ScheduleStats, SlotProblem};
use crate::ChunkScheduler;
use p2p_core::Assignment;
use p2p_types::Result;

/// Sorts every positive-utility edge by `v − w` descending and takes each
/// one whose request is still unserved and whose provider still has
/// capacity. A centralized heuristic the distributed auction is compared
/// against in the ablations; it is not optimal in general (greedy can block
/// a better pairing) but is usually close.
#[derive(Debug, Clone, Default)]
pub struct GreedyScheduler {
    _private: (),
}

impl GreedyScheduler {
    /// Creates the scheduler.
    pub fn new() -> Self {
        GreedyScheduler { _private: () }
    }
}

impl ChunkScheduler for GreedyScheduler {
    fn name(&self) -> &str {
        "global_greedy"
    }

    fn schedule(&mut self, problem: &SlotProblem) -> Result<Schedule> {
        let instance = &problem.instance;
        let mut edges: Vec<(usize, usize, f64)> = Vec::new(); // (request, edge, utility)
        for (r, req) in instance.requests().iter().enumerate() {
            for (e, edge) in req.edges.iter().enumerate() {
                let u = edge.utility().get();
                if u > 0.0 {
                    edges.push((r, e, u));
                }
            }
        }
        edges.sort_by(|a, b| b.2.total_cmp(&a.2).then_with(|| (a.0, a.1).cmp(&(b.0, b.1))));

        let mut remaining: Vec<u32> =
            instance.providers().iter().map(|p| p.capacity.chunks_per_slot()).collect();
        let mut assigned = vec![None; instance.request_count()];
        let mut taken = 0u64;
        for (r, e, _) in edges {
            if assigned[r].is_some() {
                continue;
            }
            let provider = instance.request(r).edges[e].provider;
            if remaining[provider] == 0 {
                continue;
            }
            assigned[r] = Some(e);
            remaining[provider] -= 1;
            taken += 1;
        }
        Ok(Schedule {
            assignment: Assignment::new(assigned),
            stats: ScheduleStats { rounds: 1, bids: taken },
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use p2p_core::WelfareInstance;
    use p2p_types::{ChunkId, Cost, PeerId, RequestId, SimDuration, Valuation, VideoId};

    fn rid(d: u32) -> RequestId {
        RequestId::new(PeerId::new(d), ChunkId::new(VideoId::new(0), 0))
    }

    #[test]
    fn takes_edges_by_descending_utility() {
        let mut b = WelfareInstance::builder();
        let u = b.add_provider(PeerId::new(10), 1);
        let low = b.add_request(rid(0));
        let high = b.add_request(rid(1));
        b.add_edge(low, u, Valuation::new(2.0), Cost::new(1.0)).unwrap();
        b.add_edge(high, u, Valuation::new(7.0), Cost::new(1.0)).unwrap();
        let inst = b.build().unwrap();
        let p = SlotProblem::new(inst, vec![SimDuration::from_secs(1); 2]).unwrap();
        let out = GreedyScheduler::new().schedule(&p).unwrap();
        assert_eq!(out.assignment.choice(1), Some(0));
        assert_eq!(out.assignment.choice(0), None);
    }

    #[test]
    fn skips_negative_utility_edges() {
        let mut b = WelfareInstance::builder();
        let u = b.add_provider(PeerId::new(10), 5);
        let r = b.add_request(rid(0));
        b.add_edge(r, u, Valuation::new(0.8), Cost::new(9.0)).unwrap();
        let inst = b.build().unwrap();
        let p = SlotProblem::new(inst, vec![SimDuration::from_secs(1)]).unwrap();
        let out = GreedyScheduler::new().schedule(&p).unwrap();
        assert_eq!(out.assignment.assigned_count(), 0);
    }

    #[test]
    fn greedy_is_feasible_and_within_optimal() {
        let mut b = WelfareInstance::builder();
        let u0 = b.add_provider(PeerId::new(10), 1);
        let u1 = b.add_provider(PeerId::new(11), 1);
        let r0 = b.add_request(rid(0));
        let r1 = b.add_request(rid(1));
        b.add_edge(r0, u0, Valuation::new(6.0), Cost::new(1.0)).unwrap();
        b.add_edge(r0, u1, Valuation::new(6.0), Cost::new(2.0)).unwrap();
        b.add_edge(r1, u0, Valuation::new(5.0), Cost::new(0.5)).unwrap();
        let inst = b.build().unwrap();
        let p = SlotProblem::new(inst, vec![SimDuration::from_secs(1); 2]).unwrap();
        let out = GreedyScheduler::new().schedule(&p).unwrap();
        assert!(out.assignment.validate(&p.instance).is_ok());
        assert!(out.welfare(&p).get() <= p.instance.optimal_welfare().get() + 1e-9);
        assert_eq!(GreedyScheduler::new().name(), "global_greedy");
    }
}
