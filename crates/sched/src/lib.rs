//! Chunk-scheduling strategies.
//!
//! The streaming system delegates each slot's "who downloads which chunk
//! from whom" decision to a [`ChunkScheduler`]. Implementations:
//!
//! * [`AuctionScheduler`] — the paper's primal-dual auction (the
//!   contribution under evaluation);
//! * [`ShardedAuctionScheduler`] — the same auction on the sharded
//!   parallel engine (`p2p_core::ShardedAuction`), for 10³–10⁴-request
//!   slots;
//! * [`FlatAuctionScheduler`] — the same auction on the flat CSR engine
//!   (`p2p_core::csr::FlatAuction`): zero-allocation hot path over the
//!   cache-emitted CSR compilation, bit-identical outcomes to the two
//!   schedulers above at every shard count;
//! * [`SimAuctionScheduler`] — the same auction executed as a virtual-time
//!   discrete-event simulation of the peer swarm (`p2p_core::SwarmAuction`):
//!   bit-identical to the engines above under an ideal network, and the
//!   only scheduler that exercises seeded message faults (drop / delay /
//!   reorder / duplicate / partition);
//! * [`NetAuctionScheduler`] — the same auction executed over real
//!   loopback TCP sockets (`p2p_net`): a tracker coordinator plus peer
//!   actors speaking the versioned wire protocol, bit-identical to the
//!   in-process engines;
//! * [`SimpleLocalityScheduler`] — the paper's comparison baseline: "each
//!   downstream peer requests chunks from upstream neighbors with the
//!   lowest network costs in between as much as possible; for bandwidth
//!   allocation at an upstream peer, it always prioritizes to transmit
//!   chunks with more urgent deadlines" (Sec. V);
//! * [`RandomScheduler`] — a network-agnostic strawman for ablations;
//! * [`GreedyScheduler`] — a centralized global-greedy heuristic, an upper
//!   baseline for the distributed algorithms;
//! * [`ExactScheduler`] — the min-cost-flow optimum (welfare upper bound,
//!   not implementable distributively; used for optimality-gap plots).
//!
//! # Examples
//!
//! ```
//! use p2p_sched::{AuctionScheduler, ChunkScheduler, SlotProblem};
//! use p2p_core::WelfareInstance;
//! use p2p_types::*;
//!
//! let mut b = WelfareInstance::builder();
//! let u = b.add_provider(PeerId::new(1), 1);
//! let r = b.add_request(RequestId::new(PeerId::new(0), ChunkId::new(VideoId::new(0), 0)));
//! b.add_edge(r, u, Valuation::new(4.0), Cost::new(1.0)).unwrap();
//! let problem = SlotProblem::new(b.build().unwrap(), vec![SimDuration::from_secs(5)]).unwrap();
//!
//! let mut sched = AuctionScheduler::paper();
//! let schedule = sched.schedule(&problem).unwrap();
//! assert_eq!(schedule.assignment.assigned_count(), 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod auction;
pub mod exact;
pub mod greedy;
pub mod locality;
pub mod net;
pub mod problem;
pub mod random;
pub mod sim;

pub use auction::{AuctionScheduler, FlatAuctionScheduler, ShardedAuctionScheduler};
pub use exact::ExactScheduler;
pub use greedy::GreedyScheduler;
pub use locality::SimpleLocalityScheduler;
pub use net::NetAuctionScheduler;
pub use p2p_core::csr::WorkerSpawner;
pub use p2p_core::NetworkModel;
pub use problem::{Schedule, ScheduleStats, SlotProblem};
pub use random::RandomScheduler;
pub use sim::SimAuctionScheduler;

use p2p_metrics::EngineReport;
use p2p_types::Result;

/// A per-slot chunk scheduling strategy.
///
/// Implementations may keep internal state across slots (e.g. RNG streams),
/// hence `&mut self`.
pub trait ChunkScheduler {
    /// Short identifier used in figure legends and CSV headers.
    fn name(&self) -> &str;

    /// Solves one slot's scheduling problem.
    ///
    /// # Errors
    ///
    /// Implementations report divergence or malformed instances via
    /// [`p2p_types::P2pError`].
    fn schedule(&mut self, problem: &SlotProblem) -> Result<Schedule>;

    /// Enables or disables engine probe collection for subsequent slots.
    ///
    /// The default is a no-op: schedulers without an instrumented engine
    /// (locality, random, greedy, exact) simply never produce a report, and
    /// probes stay off unless a caller opts in — the hot path monomorphizes
    /// to the bare loop.
    fn set_probes(&mut self, _enabled: bool) {}

    /// Takes the [`EngineReport`] accumulated since the last call.
    ///
    /// Returns `None` when probes are off or the scheduler has no
    /// instrumented engine. Taking resets the accumulator, so the streaming
    /// system can collect one report per slot.
    fn take_probe_report(&mut self) -> Option<EngineReport> {
        None
    }

    /// Takes the virtual seconds the last scheduled slot consumed, if this
    /// scheduler runs on virtual time ([`SimAuctionScheduler`]); `None`
    /// for wall-clock schedulers. The streaming system uses this as the
    /// clock seam: virtual-time runs report virtual phase durations in
    /// their `RunReport` instead of wall-clock `Instant` deltas.
    fn take_virtual_elapsed(&mut self) -> Option<f64> {
        None
    }
}
