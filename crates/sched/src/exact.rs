//! The exact (min-cost-flow) scheduler — welfare upper bound.

use crate::problem::{Schedule, ScheduleStats, SlotProblem};
use crate::ChunkScheduler;
use p2p_core::Assignment;
use p2p_netflow::solve_max_profit;
use p2p_types::{P2pError, Result};

/// Solves each slot exactly via min-cost flow. Centralized and
/// non-distributable, but gives the true optimum: used for optimality-gap
/// measurements and as the reference in tests.
#[derive(Debug, Clone, Default)]
pub struct ExactScheduler {
    _private: (),
}

impl ExactScheduler {
    /// Creates the scheduler.
    pub fn new() -> Self {
        ExactScheduler { _private: () }
    }
}

impl ChunkScheduler for ExactScheduler {
    fn name(&self) -> &str {
        "exact"
    }

    fn schedule(&mut self, problem: &SlotProblem) -> Result<Schedule> {
        let instance = &problem.instance;
        let sol = solve_max_profit(&instance.to_transportation())
            .map_err(|e| P2pError::MalformedInstance(e.to_string()))?;
        let choices = instance
            .requests()
            .iter()
            .zip(&sol.assignment)
            .map(|(req, provider)| {
                provider.map(|u| {
                    req.edges
                        .iter()
                        .position(|e| e.provider == u)
                        .expect("solver only uses instance edges")
                })
            })
            .collect();
        Ok(Schedule { assignment: Assignment::new(choices), stats: ScheduleStats::default() })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::auction::AuctionScheduler;
    use p2p_core::WelfareInstance;
    use p2p_types::{ChunkId, Cost, PeerId, RequestId, SimDuration, Valuation, VideoId};

    fn problem() -> SlotProblem {
        let mut b = WelfareInstance::builder();
        let u0 = b.add_provider(PeerId::new(10), 1);
        let u1 = b.add_provider(PeerId::new(11), 1);
        let r0 = b.add_request(RequestId::new(PeerId::new(0), ChunkId::new(VideoId::new(0), 0)));
        let r1 = b.add_request(RequestId::new(PeerId::new(1), ChunkId::new(VideoId::new(0), 0)));
        b.add_edge(r0, u0, Valuation::new(6.0), Cost::new(1.0)).unwrap();
        b.add_edge(r0, u1, Valuation::new(6.0), Cost::new(2.7)).unwrap();
        b.add_edge(r1, u0, Valuation::new(5.5), Cost::new(0.4)).unwrap();
        b.add_edge(r1, u1, Valuation::new(5.5), Cost::new(3.1)).unwrap();
        let inst = b.build().unwrap();
        SlotProblem::new(inst, vec![SimDuration::from_secs(1); 2]).unwrap()
    }

    #[test]
    fn exact_matches_optimal_welfare() {
        let p = problem();
        let out = ExactScheduler::new().schedule(&p).unwrap();
        let gap = (out.welfare(&p).get() - p.instance.optimal_welfare().get()).abs();
        assert!(gap < 1e-9, "gap {gap}");
        assert!(out.assignment.validate(&p.instance).is_ok());
        assert_eq!(ExactScheduler::new().name(), "exact");
    }

    #[test]
    fn auction_matches_exact_on_tie_free_instance() {
        let p = problem();
        let exact = ExactScheduler::new().schedule(&p).unwrap();
        let auction = AuctionScheduler::paper().schedule(&p).unwrap();
        let gap = (auction.welfare(&p).get() - exact.welfare(&p).get()).abs();
        assert!(gap < 1e-9, "Theorem 1: the auction equals the exact optimum (gap {gap})");
    }
}
