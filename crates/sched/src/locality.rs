//! The paper's comparison baseline: simple locality-aware scheduling.

use crate::problem::{Schedule, ScheduleStats, SlotProblem};
use crate::ChunkScheduler;
use p2p_core::Assignment;
use p2p_types::Result;

/// "Simple locality-aware chunk scheduling" (Sec. V): requesters go to the
/// cheapest provider; providers give bandwidth to the most urgent chunks.
///
/// Implemented as deferred-acceptance rounds:
///
/// 1. every unassigned request proposes to its cheapest not-yet-tried
///    provider (pure network cost — valuations are ignored, which is why
///    the baseline's welfare can go negative, as the paper observes);
/// 2. each provider accepts proposals in order of urgency (earliest
///    playback deadline first) while capacity remains, rejecting the rest;
/// 3. rejected requests move on to their next-cheapest provider, up to
///    `max_tries` proposals per request per slot.
///
/// `max_tries` models the protocol's request budget within one slot. The
/// default (1) is the literal one-shot client: each chunk is requested from
/// the cheapest caching neighbor once per bidding cycle, and a rejected
/// request simply retries in the next slot. The auction, by contrast,
/// renegotiates continuously within the slot — that in-slot price discovery
/// is exactly the paper's contribution, so giving the baseline unbounded
/// in-slot retries would equip it with the auction's machinery.
/// `with_max_tries(usize::MAX)` yields the idealized exhaustive-matching
/// variant used in ablations.
///
/// Accepted requests keep their unit (no eviction — the baseline has no
/// prices to justify reallocations).
#[derive(Debug, Clone)]
pub struct SimpleLocalityScheduler {
    max_tries: usize,
}

impl Default for SimpleLocalityScheduler {
    fn default() -> Self {
        Self::new()
    }
}

impl SimpleLocalityScheduler {
    /// Creates the baseline scheduler with the default retry budget.
    pub fn new() -> Self {
        SimpleLocalityScheduler { max_tries: 1 }
    }

    /// Overrides the per-slot proposal budget per request.
    #[must_use]
    pub fn with_max_tries(mut self, max_tries: usize) -> Self {
        self.max_tries = max_tries.max(1);
        self
    }
}

impl ChunkScheduler for SimpleLocalityScheduler {
    fn name(&self) -> &str {
        "simple_locality"
    }

    fn schedule(&mut self, problem: &SlotProblem) -> Result<Schedule> {
        let instance = &problem.instance;
        let n = instance.request_count();

        // Per request: its edges sorted by ascending network cost, and how
        // many of them have been tried so far.
        let preference: Vec<Vec<usize>> = instance
            .requests()
            .iter()
            .map(|r| {
                let mut order: Vec<usize> = (0..r.edges.len()).collect();
                order.sort_by(|&a, &b| {
                    r.edges[a]
                        .cost
                        .cmp(&r.edges[b].cost)
                        .then_with(|| r.edges[a].provider.cmp(&r.edges[b].provider))
                });
                order
            })
            .collect();
        let mut next_try = vec![0usize; n];
        let mut assigned: Vec<Option<usize>> = vec![None; n];
        let mut remaining: Vec<u32> =
            instance.providers().iter().map(|p| p.capacity.chunks_per_slot()).collect();

        let mut rounds = 0u64;
        let mut proposals_total = 0u64;
        loop {
            rounds += 1;
            // Gather this round's proposals per provider.
            let mut proposals: Vec<Vec<usize>> = vec![Vec::new(); instance.provider_count()];
            let mut any = false;
            for r in 0..n {
                if assigned[r].is_some() {
                    continue;
                }
                let order = &preference[r];
                if next_try[r] >= order.len().min(self.max_tries) {
                    continue; // exhausted the provider list or retry budget
                }
                let edge = order[next_try[r]];
                next_try[r] += 1;
                let provider = instance.request(r).edges[edge].provider;
                proposals[provider].push(r);
                any = true;
                proposals_total += 1;
            }
            if !any {
                break;
            }
            // Providers admit by urgency (earliest deadline first) while
            // capacity remains.
            for (u, mut reqs) in proposals.into_iter().enumerate() {
                reqs.sort_by(|&a, &b| {
                    problem.urgency[a].cmp(&problem.urgency[b]).then_with(|| a.cmp(&b))
                });
                for r in reqs {
                    if remaining[u] == 0 {
                        break; // the rest are rejected; they retry next round
                    }
                    let edge = preference[r][next_try[r] - 1];
                    assigned[r] = Some(edge);
                    remaining[u] -= 1;
                }
            }
        }

        Ok(Schedule {
            assignment: Assignment::new(assigned),
            stats: ScheduleStats { rounds, bids: proposals_total },
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use p2p_core::WelfareInstance;
    use p2p_types::{ChunkId, Cost, PeerId, RequestId, SimDuration, Valuation, VideoId};

    fn rid(d: u32, c: u32) -> RequestId {
        RequestId::new(PeerId::new(d), ChunkId::new(VideoId::new(0), c))
    }

    #[test]
    fn requests_go_to_cheapest_provider_first() {
        let mut b = WelfareInstance::builder();
        let cheap = b.add_provider(PeerId::new(10), 1);
        let costly = b.add_provider(PeerId::new(11), 1);
        let r = b.add_request(rid(0, 0));
        b.add_edge(r, costly, Valuation::new(1.0), Cost::new(5.0)).unwrap();
        b.add_edge(r, cheap, Valuation::new(1.0), Cost::new(0.5)).unwrap();
        let inst = b.build().unwrap();
        let p = SlotProblem::new(inst, vec![SimDuration::from_secs(1)]).unwrap();
        let out = SimpleLocalityScheduler::new().schedule(&p).unwrap();
        assert_eq!(out.assignment.provider_of(&p.instance, 0), Some(cheap));
    }

    #[test]
    fn urgency_breaks_capacity_contention() {
        let mut b = WelfareInstance::builder();
        let u = b.add_provider(PeerId::new(10), 1);
        let relaxed = b.add_request(rid(0, 0));
        let urgent = b.add_request(rid(1, 0));
        b.add_edge(relaxed, u, Valuation::new(1.0), Cost::new(1.0)).unwrap();
        b.add_edge(urgent, u, Valuation::new(1.0), Cost::new(1.0)).unwrap();
        let inst = b.build().unwrap();
        let p = SlotProblem::new(inst, vec![SimDuration::from_secs(8), SimDuration::from_secs(1)])
            .unwrap();
        let out = SimpleLocalityScheduler::new().schedule(&p).unwrap();
        assert_eq!(out.assignment.choice(1), Some(0), "urgent request wins");
        assert_eq!(out.assignment.choice(0), None);
    }

    #[test]
    fn rejected_requests_spill_to_next_cheapest() {
        let mut b = WelfareInstance::builder();
        let local = b.add_provider(PeerId::new(10), 1);
        let remote = b.add_provider(PeerId::new(11), 1);
        let r0 = b.add_request(rid(0, 0));
        let r1 = b.add_request(rid(1, 0));
        for r in [r0, r1] {
            b.add_edge(r, local, Valuation::new(1.0), Cost::new(1.0)).unwrap();
            b.add_edge(r, remote, Valuation::new(1.0), Cost::new(6.0)).unwrap();
        }
        let inst = b.build().unwrap();
        let p = SlotProblem::new(inst, vec![SimDuration::from_secs(1), SimDuration::from_secs(2)])
            .unwrap();
        // Spilling to the next-cheapest provider requires a retry budget
        // beyond the default one-shot client.
        let out = SimpleLocalityScheduler::new().with_max_tries(2).schedule(&p).unwrap();
        // r0 (more urgent) takes the local unit; r1 spills to the remote one.
        assert_eq!(out.assignment.provider_of(&p.instance, 0), Some(local));
        assert_eq!(out.assignment.provider_of(&p.instance, 1), Some(remote));
        assert!(out.stats.rounds >= 2);

        // The one-shot default leaves the rejected request unassigned.
        let one_shot = SimpleLocalityScheduler::new().schedule(&p).unwrap();
        assert_eq!(one_shot.assignment.provider_of(&p.instance, 0), Some(local));
        assert_eq!(one_shot.assignment.provider_of(&p.instance, 1), None);
    }

    #[test]
    fn accepts_negative_utility_transfers_unlike_the_auction() {
        // v = 0.8, w = 6 ⇒ utility −5.2; the baseline still schedules it
        // (it ignores valuations), matching the paper's negative-welfare
        // observation in Fig. 3.
        let mut b = WelfareInstance::builder();
        let u = b.add_provider(PeerId::new(10), 1);
        let r = b.add_request(rid(0, 0));
        b.add_edge(r, u, Valuation::new(0.8), Cost::new(6.0)).unwrap();
        let inst = b.build().unwrap();
        let p = SlotProblem::new(inst, vec![SimDuration::from_secs(1)]).unwrap();
        let out = SimpleLocalityScheduler::new().schedule(&p).unwrap();
        assert_eq!(out.assignment.assigned_count(), 1);
        assert!(out.welfare(&p).get() < 0.0);
    }

    #[test]
    fn respects_capacity() {
        let mut b = WelfareInstance::builder();
        let u = b.add_provider(PeerId::new(10), 2);
        let mut reqs = Vec::new();
        for d in 0..5 {
            let r = b.add_request(rid(d, 0));
            b.add_edge(r, u, Valuation::new(1.0), Cost::new(1.0)).unwrap();
            reqs.push(r);
        }
        let inst = b.build().unwrap();
        let p = SlotProblem::new(inst, vec![SimDuration::from_secs(1); 5]).unwrap();
        let out = SimpleLocalityScheduler::new().schedule(&p).unwrap();
        assert_eq!(out.assignment.assigned_count(), 2);
        assert!(out.assignment.validate(&p.instance).is_ok());
    }
}
