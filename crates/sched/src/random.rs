//! Network-agnostic random scheduler (ablation strawman).

use crate::problem::{Schedule, ScheduleStats, SlotProblem};
use crate::ChunkScheduler;
use p2p_core::Assignment;
use p2p_types::Result;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Assigns each request to a uniformly random provider with remaining
/// capacity, ignoring both cost and valuation — the behaviour of a
/// network-agnostic P2P protocol, used as the ablation floor.
#[derive(Debug, Clone)]
pub struct RandomScheduler {
    rng: StdRng,
}

impl RandomScheduler {
    /// Creates the scheduler with a deterministic seed.
    pub fn new(seed: u64) -> Self {
        RandomScheduler { rng: StdRng::seed_from_u64(seed) }
    }
}

impl ChunkScheduler for RandomScheduler {
    fn name(&self) -> &str {
        "random"
    }

    fn schedule(&mut self, problem: &SlotProblem) -> Result<Schedule> {
        let instance = &problem.instance;
        let mut remaining: Vec<u32> =
            instance.providers().iter().map(|p| p.capacity.chunks_per_slot()).collect();
        // Randomize request processing order too, so early ids get no
        // systematic advantage.
        let mut order: Vec<usize> = (0..instance.request_count()).collect();
        order.shuffle(&mut self.rng);
        let mut assigned = vec![None; instance.request_count()];
        let mut proposals = 0u64;
        for r in order {
            let edges = &instance.request(r).edges;
            let mut candidates: Vec<usize> =
                (0..edges.len()).filter(|&e| remaining[edges[e].provider] > 0).collect();
            candidates.shuffle(&mut self.rng);
            if let Some(&e) = candidates.first() {
                proposals += 1;
                assigned[r] = Some(e);
                remaining[edges[e].provider] -= 1;
            }
        }
        Ok(Schedule {
            assignment: Assignment::new(assigned),
            stats: ScheduleStats { rounds: 1, bids: proposals },
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use p2p_core::WelfareInstance;
    use p2p_types::{ChunkId, Cost, PeerId, RequestId, SimDuration, Valuation, VideoId};

    fn problem(providers: u32, capacity: u32, requests: u32) -> SlotProblem {
        let mut b = WelfareInstance::builder();
        let us: Vec<_> =
            (0..providers).map(|i| b.add_provider(PeerId::new(100 + i), capacity)).collect();
        for d in 0..requests {
            let r = b.add_request(RequestId::new(PeerId::new(d), ChunkId::new(VideoId::new(0), 0)));
            for &u in &us {
                b.add_edge(r, u, Valuation::new(2.0), Cost::new(1.0 + u as f64)).unwrap();
            }
        }
        let inst = b.build().unwrap();
        let n = inst.request_count();
        SlotProblem::new(inst, vec![SimDuration::from_secs(1); n]).unwrap()
    }

    #[test]
    fn fills_capacity_when_demand_exceeds_supply() {
        let p = problem(2, 1, 10);
        let out = RandomScheduler::new(7).schedule(&p).unwrap();
        assert_eq!(out.assignment.assigned_count(), 2);
        assert!(out.assignment.validate(&p.instance).is_ok());
    }

    #[test]
    fn deterministic_per_seed() {
        let p = problem(3, 2, 10);
        let a = RandomScheduler::new(42).schedule(&p).unwrap();
        let b = RandomScheduler::new(42).schedule(&p).unwrap();
        assert_eq!(a.assignment, b.assignment);
    }

    #[test]
    fn different_seeds_differ_eventually() {
        let p = problem(4, 1, 12);
        let a = RandomScheduler::new(1).schedule(&p).unwrap();
        let b = RandomScheduler::new(2).schedule(&p).unwrap();
        // Not guaranteed per-instance, but overwhelmingly likely here.
        assert_ne!(a.assignment, b.assignment);
    }

    #[test]
    fn name_is_stable() {
        assert_eq!(RandomScheduler::new(0).name(), "random");
    }
}
