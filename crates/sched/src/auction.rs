//! The paper's scheduler: the primal-dual auction.

use crate::problem::{Schedule, ScheduleStats, SlotProblem};
use crate::ChunkScheduler;
use p2p_core::{AuctionConfig, SyncAuction};
use p2p_types::Result;

/// Schedules each slot by running the distributed auction to convergence
/// (synchronous execution; the message-level execution with latencies is
/// exercised separately by the Fig. 2 harness).
///
/// # Examples
///
/// See the crate-level example.
#[derive(Debug, Clone, Default)]
pub struct AuctionScheduler {
    engine: SyncAuction,
}

impl AuctionScheduler {
    /// Auction with the paper's ε = 0 rule.
    pub fn paper() -> Self {
        AuctionScheduler { engine: SyncAuction::new(AuctionConfig::paper()) }
    }

    /// Auction with a positive bid increment ε.
    pub fn with_epsilon(epsilon: f64) -> Self {
        AuctionScheduler { engine: SyncAuction::new(AuctionConfig::with_epsilon(epsilon)) }
    }

    /// Auction with a custom configuration.
    pub fn with_config(config: AuctionConfig) -> Self {
        AuctionScheduler { engine: SyncAuction::new(config) }
    }
}

impl ChunkScheduler for AuctionScheduler {
    fn name(&self) -> &str {
        "auction"
    }

    fn schedule(&mut self, problem: &SlotProblem) -> Result<Schedule> {
        let outcome = self.engine.run(&problem.instance)?;
        Ok(Schedule {
            assignment: outcome.assignment,
            stats: ScheduleStats { rounds: outcome.rounds, bids: outcome.bids_submitted },
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use p2p_core::WelfareInstance;
    use p2p_types::{ChunkId, Cost, PeerId, RequestId, SimDuration, Valuation, VideoId};

    fn problem() -> SlotProblem {
        let mut b = WelfareInstance::builder();
        let u0 = b.add_provider(PeerId::new(10), 1);
        let u1 = b.add_provider(PeerId::new(11), 1);
        let r0 = b.add_request(RequestId::new(PeerId::new(0), ChunkId::new(VideoId::new(0), 0)));
        let r1 = b.add_request(RequestId::new(PeerId::new(1), ChunkId::new(VideoId::new(0), 0)));
        b.add_edge(r0, u0, Valuation::new(6.0), Cost::new(0.5)).unwrap();
        b.add_edge(r0, u1, Valuation::new(6.0), Cost::new(2.0)).unwrap();
        b.add_edge(r1, u0, Valuation::new(5.0), Cost::new(0.6)).unwrap();
        b.add_edge(r1, u1, Valuation::new(5.0), Cost::new(2.2)).unwrap();
        let inst = b.build().unwrap();
        let n = inst.request_count();
        SlotProblem::new(inst, vec![SimDuration::from_secs(3); n]).unwrap()
    }

    #[test]
    fn schedules_to_social_optimum() {
        let p = problem();
        let mut s = AuctionScheduler::paper();
        let out = s.schedule(&p).unwrap();
        assert_eq!(out.welfare(&p), p.instance.optimal_welfare());
        assert!(out.stats.rounds >= 1);
        assert!(out.stats.bids >= 2);
        assert_eq!(s.name(), "auction");
    }

    #[test]
    fn epsilon_variant_schedules() {
        let p = problem();
        let mut s = AuctionScheduler::with_epsilon(0.01);
        let out = s.schedule(&p).unwrap();
        assert!(out.welfare(&p).get() >= p.instance.optimal_welfare().get() - 0.02);
    }
}
