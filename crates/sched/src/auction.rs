//! The paper's scheduler: the primal-dual auction.

use crate::problem::{Schedule, ScheduleStats, SlotProblem};
use crate::ChunkScheduler;
use p2p_core::{AuctionConfig, SyncAuction};
use p2p_types::{PeerId, Result};
use std::collections::HashMap;

/// Schedules each slot by running the distributed auction to convergence
/// (synchronous execution; the message-level execution with latencies is
/// exercised separately by the Fig. 2 harness).
///
/// With [`AuctionScheduler::warm_start`] enabled the scheduler carries the
/// previous slot's final prices across slots, keyed by provider peer id,
/// and seeds the next auction from them via
/// [`SyncAuction::run_warm`] — locality-aware swarms change little between
/// slots, so most prices are already near equilibrium and convergence needs
/// far fewer bids. The `n·ε` optimality certificate is preserved (see
/// `run_warm`'s repair loop), but tie-breaks can differ from a cold run, so
/// warm outcomes are ε-equivalent rather than bit-identical.
///
/// # Examples
///
/// See the crate-level example.
#[derive(Debug, Clone, Default)]
pub struct AuctionScheduler {
    engine: SyncAuction,
    warm_start: bool,
    /// Final prices of the previous slot, by provider peer id.
    prior_prices: HashMap<PeerId, f64>,
}

impl AuctionScheduler {
    /// Auction with the paper's ε = 0 rule.
    pub fn paper() -> Self {
        AuctionScheduler {
            engine: SyncAuction::new(AuctionConfig::paper()),
            warm_start: false,
            prior_prices: HashMap::new(),
        }
    }

    /// Auction with a positive bid increment ε.
    pub fn with_epsilon(epsilon: f64) -> Self {
        AuctionScheduler {
            engine: SyncAuction::new(AuctionConfig::with_epsilon(epsilon)),
            ..Self::paper()
        }
    }

    /// Auction with a custom configuration.
    pub fn with_config(config: AuctionConfig) -> Self {
        AuctionScheduler { engine: SyncAuction::new(config), ..Self::paper() }
    }

    /// Enables slot-to-slot price warm-starting (builder-style).
    #[must_use]
    pub fn warm_start(mut self) -> Self {
        self.warm_start = true;
        self
    }

    /// Whether warm-starting is enabled.
    pub fn is_warm_start(&self) -> bool {
        self.warm_start
    }
}

impl ChunkScheduler for AuctionScheduler {
    fn name(&self) -> &str {
        if self.warm_start {
            "auction_warm"
        } else {
            "auction"
        }
    }

    fn schedule(&mut self, problem: &SlotProblem) -> Result<Schedule> {
        let instance = &problem.instance;
        let outcome = if self.warm_start && !self.prior_prices.is_empty() {
            let prices: Vec<f64> = instance
                .providers()
                .iter()
                .map(|p| self.prior_prices.get(&p.peer).copied().unwrap_or(0.0))
                .collect();
            self.engine.run_warm(instance, &prices)?
        } else {
            self.engine.run(instance)?
        };
        if self.warm_start {
            self.prior_prices = instance
                .providers()
                .iter()
                .zip(&outcome.duals.lambda)
                .map(|(p, &l)| (p.peer, l))
                .collect();
        }
        Ok(Schedule {
            assignment: outcome.assignment,
            stats: ScheduleStats { rounds: outcome.rounds, bids: outcome.bids_submitted },
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use p2p_core::WelfareInstance;
    use p2p_types::{ChunkId, Cost, PeerId, RequestId, SimDuration, Valuation, VideoId};

    fn problem() -> SlotProblem {
        let mut b = WelfareInstance::builder();
        let u0 = b.add_provider(PeerId::new(10), 1);
        let u1 = b.add_provider(PeerId::new(11), 1);
        let r0 = b.add_request(RequestId::new(PeerId::new(0), ChunkId::new(VideoId::new(0), 0)));
        let r1 = b.add_request(RequestId::new(PeerId::new(1), ChunkId::new(VideoId::new(0), 0)));
        b.add_edge(r0, u0, Valuation::new(6.0), Cost::new(0.5)).unwrap();
        b.add_edge(r0, u1, Valuation::new(6.0), Cost::new(2.0)).unwrap();
        b.add_edge(r1, u0, Valuation::new(5.0), Cost::new(0.6)).unwrap();
        b.add_edge(r1, u1, Valuation::new(5.0), Cost::new(2.2)).unwrap();
        let inst = b.build().unwrap();
        let n = inst.request_count();
        SlotProblem::new(inst, vec![SimDuration::from_secs(3); n]).unwrap()
    }

    #[test]
    fn schedules_to_social_optimum() {
        let p = problem();
        let mut s = AuctionScheduler::paper();
        let out = s.schedule(&p).unwrap();
        assert_eq!(out.welfare(&p), p.instance.optimal_welfare());
        assert!(out.stats.rounds >= 1);
        assert!(out.stats.bids >= 2);
        assert_eq!(s.name(), "auction");
        assert!(!s.is_warm_start());
    }

    #[test]
    fn epsilon_variant_schedules() {
        let p = problem();
        let mut s = AuctionScheduler::with_epsilon(0.01);
        let out = s.schedule(&p).unwrap();
        assert!(out.welfare(&p).get() >= p.instance.optimal_welfare().get() - 0.02);
    }

    #[test]
    fn warm_variant_carries_prices_across_slots() {
        let p = problem();
        let mut s = AuctionScheduler::paper().warm_start();
        assert_eq!(s.name(), "auction_warm");
        let first = s.schedule(&p).unwrap();
        assert_eq!(first.welfare(&p), p.instance.optimal_welfare());
        // Re-scheduling the identical slot warm-starts from the converged
        // prices; welfare is unchanged and no extra bids are needed.
        let second = s.schedule(&p).unwrap();
        assert_eq!(second.welfare(&p), p.instance.optimal_welfare());
        assert!(second.stats.bids <= first.stats.bids);
    }

    #[test]
    fn warm_variant_survives_provider_turnover() {
        let mut s = AuctionScheduler::with_epsilon(0.01).warm_start();
        let p = problem();
        s.schedule(&p).unwrap();
        // Next slot: one carried provider, one brand-new peer.
        let mut b = WelfareInstance::builder();
        let u0 = b.add_provider(PeerId::new(10), 1);
        let u2 = b.add_provider(PeerId::new(99), 1);
        let r0 = b.add_request(RequestId::new(PeerId::new(0), ChunkId::new(VideoId::new(0), 1)));
        b.add_edge(r0, u0, Valuation::new(4.0), Cost::new(0.5)).unwrap();
        b.add_edge(r0, u2, Valuation::new(4.0), Cost::new(1.5)).unwrap();
        let inst = b.build().unwrap();
        let next = SlotProblem::new(inst, vec![SimDuration::from_secs(3)]).unwrap();
        let out = s.schedule(&next).unwrap();
        assert!(
            out.welfare(&next).get() >= next.instance.optimal_welfare().get() - 2.0 * 0.01 - 1e-9
        );
    }
}
