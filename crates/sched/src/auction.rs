//! The paper's scheduler: the primal-dual auction (sequential and sharded).

use crate::problem::{Schedule, ScheduleStats, SlotProblem};
use crate::ChunkScheduler;
use p2p_core::csr::WorkerSpawner;
use p2p_core::{
    AuctionConfig, AuctionOutcome, FlatAuction, ShardCount, ShardedAuction, SyncAuction,
};
use p2p_metrics::{CountingProbe, EngineReport};
use p2p_types::{PeerId, Result};
use std::collections::HashMap;
use std::sync::Arc;

/// Slot-to-slot price carry-over for warm-started auction schedulers.
///
/// # Churn audit
///
/// Prices are keyed by **provider peer id**, never by slot index: between
/// slots the provider list can reorder arbitrarily, a provider can leave,
/// and a brand-new peer can take over the departed provider's position in
/// the next slot's provider order. Because seeding looks prices up by
/// `PeerId` (and the map is rebuilt from scratch after every slot, so
/// departed providers' entries do not linger), a new provider always starts
/// at price 0 and can never inherit a stale λ from whoever previously held
/// its slot order — the regression tests below pin this. `p2p-streaming`
/// allocates peer ids monotonically and never recycles one, so id reuse
/// cannot alias either. Should a caller hand-build instances that *do*
/// recycle peer ids, a mis-seeded price is still only a warm hint: the
/// engines' CS 1 repair loop (`run_warm`) zeroes unsupported prices, so the
/// Theorem 1 `n·ε` certificate survives even that abuse.
#[derive(Debug, Clone, Default)]
pub(crate) struct PriceCarry {
    by_peer: HashMap<PeerId, f64>,
}

impl PriceCarry {
    /// Whether any prices were carried from a previous slot.
    pub(crate) fn is_empty(&self) -> bool {
        self.by_peer.is_empty()
    }

    /// The carried price vector for this slot's provider order (unknown
    /// peers start at 0).
    pub(crate) fn seed(&self, problem: &SlotProblem) -> Vec<f64> {
        problem
            .instance
            .providers()
            .iter()
            .map(|p| self.by_peer.get(&p.peer).copied().unwrap_or(0.0))
            .collect()
    }

    /// Replaces the carry with this slot's final prices (full rebuild, so
    /// departed providers are forgotten immediately).
    fn absorb(&mut self, problem: &SlotProblem, outcome: &AuctionOutcome) {
        self.absorb_prices(problem, &outcome.duals.lambda);
    }

    /// [`PriceCarry::absorb`] from a bare price vector (what the flat
    /// scheduler's reusable outcome exposes).
    pub(crate) fn absorb_prices(&mut self, problem: &SlotProblem, lambda: &[f64]) {
        self.by_peer =
            problem.instance.providers().iter().zip(lambda).map(|(p, &l)| (p.peer, l)).collect();
    }

    /// Number of peers with a carried price (test observability).
    #[cfg(test)]
    fn len(&self) -> usize {
        self.by_peer.len()
    }

    /// The carried price for one peer (test observability).
    #[cfg(test)]
    fn price_of(&self, peer: PeerId) -> Option<f64> {
        self.by_peer.get(&peer).copied()
    }
}

/// The carry protocol shared by both auction schedulers: run cold on the
/// first slot (or with warm-starting off), run warm from the carried
/// prices otherwise, and absorb the slot's final prices back into the
/// carry — keeping the two schedulers' slot-to-slot semantics identical by
/// construction.
pub(crate) fn schedule_with_carry(
    problem: &SlotProblem,
    warm_start: bool,
    prior: &mut PriceCarry,
    probe: &mut Option<CountingProbe>,
    run_cold: impl FnOnce(
        &p2p_core::WelfareInstance,
        &mut Option<CountingProbe>,
    ) -> Result<AuctionOutcome>,
    run_warm: impl FnOnce(
        &p2p_core::WelfareInstance,
        &[f64],
        &mut Option<CountingProbe>,
    ) -> Result<AuctionOutcome>,
) -> Result<Schedule> {
    let instance = &problem.instance;
    let outcome = if warm_start && !prior.is_empty() {
        run_warm(instance, &prior.seed(problem), probe)?
    } else {
        run_cold(instance, probe)?
    };
    if warm_start {
        prior.absorb(problem, &outcome);
    }
    Ok(Schedule {
        assignment: outcome.assignment,
        stats: ScheduleStats { rounds: outcome.rounds, bids: outcome.bids_submitted },
    })
}

/// Schedules each slot by running the distributed auction to convergence
/// (synchronous execution; the message-level execution with latencies is
/// exercised separately by the Fig. 2 harness).
///
/// With [`AuctionScheduler::warm_start`] enabled the scheduler carries the
/// previous slot's final prices across slots via [`PriceCarry`] and seeds
/// the next auction from them through [`SyncAuction::run_warm`] —
/// locality-aware swarms change little between slots, so most prices are
/// already near equilibrium and convergence needs far fewer bids. The `n·ε`
/// optimality certificate is preserved (see `run_warm`'s repair loop), but
/// tie-breaks can differ from a cold run, so warm outcomes are ε-equivalent
/// rather than bit-identical.
///
/// # Examples
///
/// See the crate-level example.
#[derive(Debug, Clone, Default)]
pub struct AuctionScheduler {
    engine: SyncAuction,
    warm_start: bool,
    prior: PriceCarry,
    probe: Option<CountingProbe>,
}

impl AuctionScheduler {
    /// Auction with the paper's ε = 0 rule.
    pub fn paper() -> Self {
        AuctionScheduler {
            engine: SyncAuction::new(AuctionConfig::paper()),
            warm_start: false,
            prior: PriceCarry::default(),
            probe: None,
        }
    }

    /// Auction with a positive bid increment ε.
    pub fn with_epsilon(epsilon: f64) -> Self {
        AuctionScheduler {
            engine: SyncAuction::new(AuctionConfig::with_epsilon(epsilon)),
            ..Self::paper()
        }
    }

    /// Auction with a custom configuration.
    pub fn with_config(config: AuctionConfig) -> Self {
        AuctionScheduler { engine: SyncAuction::new(config), ..Self::paper() }
    }

    /// Enables slot-to-slot price warm-starting (builder-style).
    #[must_use]
    pub fn warm_start(mut self) -> Self {
        self.warm_start = true;
        self
    }

    /// Whether warm-starting is enabled.
    pub fn is_warm_start(&self) -> bool {
        self.warm_start
    }
}

impl ChunkScheduler for AuctionScheduler {
    fn name(&self) -> &str {
        if self.warm_start {
            "auction_warm"
        } else {
            "auction"
        }
    }

    fn schedule(&mut self, problem: &SlotProblem) -> Result<Schedule> {
        let engine = &self.engine;
        schedule_with_carry(
            problem,
            self.warm_start,
            &mut self.prior,
            &mut self.probe,
            |inst, probe| match probe {
                Some(p) => engine.run_probed(inst, p),
                None => engine.run(inst),
            },
            |inst, prices, probe| match probe {
                Some(p) => engine.run_warm_probed(inst, prices, p),
                None => engine.run_warm(inst, prices),
            },
        )
    }

    fn set_probes(&mut self, enabled: bool) {
        self.probe = enabled.then(CountingProbe::new);
    }

    fn take_probe_report(&mut self) -> Option<EngineReport> {
        self.probe.as_mut().map(CountingProbe::take_report)
    }
}

/// Schedules each slot with the sharded parallel auction
/// ([`p2p_core::ShardedAuction`]): per-shard bid batches merged through the
/// unchanged auctioneer logic with permanent retirement of priced-out
/// requests, parallel across cores when the machine has them. The outcome
/// satisfies the same Theorem 1 `n·ε`
/// certificate as [`AuctionScheduler`]; tie-breaks can differ because the
/// bid schedule differs, so welfare is ε-equivalent rather than
/// bit-identical (and exactly identical at `shards = 1`, where the engine
/// delegates to the synchronous sweep).
///
/// [`ShardedAuctionScheduler::warm_start`] composes sharding with
/// slot-to-slot price carry-over, reusing the identical [`PriceCarry`] and
/// `run_warm` repair semantics as the sequential scheduler.
#[derive(Debug, Clone, Default)]
pub struct ShardedAuctionScheduler {
    engine: ShardedAuction,
    warm_start: bool,
    prior: PriceCarry,
    probe: Option<CountingProbe>,
}

impl ShardedAuctionScheduler {
    /// Sharded auction with the paper's ε = 0 rule.
    pub fn paper(shards: ShardCount) -> Self {
        ShardedAuctionScheduler {
            engine: ShardedAuction::new(AuctionConfig::paper(), shards),
            warm_start: false,
            prior: PriceCarry::default(),
            probe: None,
        }
    }

    /// Sharded auction with a positive bid increment ε.
    pub fn with_epsilon(epsilon: f64, shards: ShardCount) -> Self {
        ShardedAuctionScheduler {
            engine: ShardedAuction::new(AuctionConfig::with_epsilon(epsilon), shards),
            ..Self::paper(shards)
        }
    }

    /// The engine's shard count.
    pub fn shards(&self) -> ShardCount {
        self.engine.shards()
    }

    /// Enables slot-to-slot price warm-starting (builder-style).
    #[must_use]
    pub fn warm_start(mut self) -> Self {
        self.warm_start = true;
        self
    }

    /// Whether warm-starting is enabled.
    pub fn is_warm_start(&self) -> bool {
        self.warm_start
    }
}

impl ChunkScheduler for ShardedAuctionScheduler {
    fn name(&self) -> &str {
        if self.warm_start {
            "auction_sharded_warm"
        } else {
            "auction_sharded"
        }
    }

    fn schedule(&mut self, problem: &SlotProblem) -> Result<Schedule> {
        let engine = &self.engine;
        schedule_with_carry(
            problem,
            self.warm_start,
            &mut self.prior,
            &mut self.probe,
            |inst, probe| match probe {
                Some(p) => engine.run_probed(inst, p),
                None => engine.run(inst),
            },
            |inst, prices, probe| match probe {
                Some(p) => engine.run_warm_probed(inst, prices, p),
                None => engine.run_warm(inst, prices),
            },
        )
    }

    fn set_probes(&mut self, enabled: bool) {
        self.probe = enabled.then(CountingProbe::new);
    }

    fn take_probe_report(&mut self) -> Option<EngineReport> {
        self.probe.as_mut().map(CountingProbe::take_report)
    }
}

/// Schedules each slot with the flat CSR engine
/// ([`p2p_core::csr::FlatAuction`]): the instance's CSR compilation (taken
/// straight from the incremental slot-problem cache when available,
/// compiled on the spot otherwise) drives the same auction schedules as
/// [`AuctionScheduler`] / [`ShardedAuctionScheduler`] with reusable scratch
/// — zero engine allocations in the hot loop after the first slot.
/// Outcomes are **bit-identical** to the nested-layout schedulers at every
/// shard count (`shards = 1` ≙ `auction`, ≥ 2 ≙ `auction_sharded`,
/// `auto` adapts to the live slot size).
///
/// [`FlatAuctionScheduler::warm_start`] composes with slot-to-slot price
/// carry-over through the same [`PriceCarry`] as the nested schedulers;
/// [`FlatAuctionScheduler::with_spawner`] lets every scheduler of a
/// process share one `p2p_runtime::WorkerPool` for slice fan-out, so
/// repeated runs spawn zero new threads.
#[derive(Debug, Clone, Default)]
pub struct FlatAuctionScheduler {
    engine: FlatAuction,
    warm_start: bool,
    prior: PriceCarry,
    /// Reusable engine result: the slot loop runs through
    /// `run_into`/`run_warm_into`, so the only per-slot engine allocation
    /// left is the schedule's own [`Assignment`].
    out: p2p_core::FlatOutcome,
    probe: Option<CountingProbe>,
}

impl FlatAuctionScheduler {
    /// Flat auction with the paper's ε = 0 rule.
    pub fn paper(shards: ShardCount) -> Self {
        FlatAuctionScheduler {
            engine: FlatAuction::new(AuctionConfig::paper(), shards),
            warm_start: false,
            prior: PriceCarry::default(),
            out: p2p_core::FlatOutcome::default(),
            probe: None,
        }
    }

    /// Flat auction with a positive bid increment ε.
    pub fn with_epsilon(epsilon: f64, shards: ShardCount) -> Self {
        FlatAuctionScheduler {
            engine: FlatAuction::new(AuctionConfig::with_epsilon(epsilon), shards),
            ..Self::paper(shards)
        }
    }

    /// The engine's shard count.
    pub fn shards(&self) -> ShardCount {
        self.engine.shards()
    }

    /// Enables slot-to-slot price warm-starting (builder-style).
    #[must_use]
    pub fn warm_start(mut self) -> Self {
        self.warm_start = true;
        self
    }

    /// Whether warm-starting is enabled.
    pub fn is_warm_start(&self) -> bool {
        self.warm_start
    }

    /// Installs a shared worker source for the engine's slice fan-out
    /// (builder-style); see [`p2p_core::csr::FlatAuction::with_spawner`].
    #[must_use]
    pub fn with_spawner(mut self, spawner: Arc<dyn WorkerSpawner>) -> Self {
        self.engine = self.engine.with_spawner(spawner);
        self
    }

    /// Forces the engine's worker-thread count (builder-style; results are
    /// unaffected).
    #[must_use]
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.engine = self.engine.with_workers(workers);
        self
    }

    /// Debug-build self-check mirroring the sharded engine's: re-verify
    /// the Theorem 1 certificate after every converged ε > 0 slot.
    fn debug_verify(&self, problem: &SlotProblem) {
        let eps = self.engine.config().epsilon;
        if cfg!(debug_assertions) && eps > 0.0 {
            let outcome = self.out.to_outcome();
            let tol = eps * (problem.instance.request_count() as f64 + 1.0);
            let report = p2p_core::verify_optimality(
                &problem.instance,
                &outcome.assignment,
                &outcome.duals,
                tol,
            );
            debug_assert!(
                report.is_optimal(),
                "flat auction lost its certificate: {:?}",
                report.violations
            );
        }
    }
}

impl ChunkScheduler for FlatAuctionScheduler {
    fn name(&self) -> &str {
        if self.warm_start {
            "auction_flat_warm"
        } else {
            "auction_flat"
        }
    }

    fn schedule(&mut self, problem: &SlotProblem) -> Result<Schedule> {
        let csr = problem.csr_instance();
        let seed = (self.warm_start && !self.prior.is_empty()).then(|| self.prior.seed(problem));
        match (&mut self.probe, seed) {
            (Some(p), Some(seed)) => {
                self.engine.run_warm_into_probed(&csr, &seed, &mut self.out, p)?;
            }
            (Some(p), None) => self.engine.run_into_probed(&csr, &mut self.out, p)?,
            (None, Some(seed)) => self.engine.run_warm_into(&csr, &seed, &mut self.out)?,
            (None, None) => self.engine.run_into(&csr, &mut self.out)?,
        }
        self.debug_verify(problem);
        if self.warm_start {
            self.prior.absorb_prices(problem, self.out.lambda());
        }
        Ok(Schedule {
            assignment: self.out.to_assignment(),
            stats: ScheduleStats { rounds: self.out.rounds(), bids: self.out.bids_submitted() },
        })
    }

    fn set_probes(&mut self, enabled: bool) {
        self.probe = enabled.then(CountingProbe::new);
    }

    fn take_probe_report(&mut self) -> Option<EngineReport> {
        self.probe.as_mut().map(CountingProbe::take_report)
    }
}

#[cfg(test)]
pub(crate) mod tests {
    use super::*;
    use p2p_core::WelfareInstance;
    use p2p_types::{ChunkId, Cost, PeerId, RequestId, SimDuration, Valuation, VideoId};

    pub(crate) fn problem() -> SlotProblem {
        let mut b = WelfareInstance::builder();
        let u0 = b.add_provider(PeerId::new(10), 1);
        let u1 = b.add_provider(PeerId::new(11), 1);
        let r0 = b.add_request(RequestId::new(PeerId::new(0), ChunkId::new(VideoId::new(0), 0)));
        let r1 = b.add_request(RequestId::new(PeerId::new(1), ChunkId::new(VideoId::new(0), 0)));
        b.add_edge(r0, u0, Valuation::new(6.0), Cost::new(0.5)).unwrap();
        b.add_edge(r0, u1, Valuation::new(6.0), Cost::new(2.0)).unwrap();
        b.add_edge(r1, u0, Valuation::new(5.0), Cost::new(0.6)).unwrap();
        b.add_edge(r1, u1, Valuation::new(5.0), Cost::new(2.2)).unwrap();
        let inst = b.build().unwrap();
        let n = inst.request_count();
        SlotProblem::new(inst, vec![SimDuration::from_secs(3); n]).unwrap()
    }

    #[test]
    fn schedules_to_social_optimum() {
        let p = problem();
        let mut s = AuctionScheduler::paper();
        let out = s.schedule(&p).unwrap();
        assert_eq!(out.welfare(&p), p.instance.optimal_welfare());
        assert!(out.stats.rounds >= 1);
        assert!(out.stats.bids >= 2);
        assert_eq!(s.name(), "auction");
        assert!(!s.is_warm_start());
    }

    #[test]
    fn epsilon_variant_schedules() {
        let p = problem();
        let mut s = AuctionScheduler::with_epsilon(0.01);
        let out = s.schedule(&p).unwrap();
        assert!(out.welfare(&p).get() >= p.instance.optimal_welfare().get() - 0.02);
    }

    #[test]
    fn warm_variant_carries_prices_across_slots() {
        let p = problem();
        let mut s = AuctionScheduler::paper().warm_start();
        assert_eq!(s.name(), "auction_warm");
        let first = s.schedule(&p).unwrap();
        assert_eq!(first.welfare(&p), p.instance.optimal_welfare());
        // Re-scheduling the identical slot warm-starts from the converged
        // prices; welfare is unchanged and no extra bids are needed.
        let second = s.schedule(&p).unwrap();
        assert_eq!(second.welfare(&p), p.instance.optimal_welfare());
        assert!(second.stats.bids <= first.stats.bids);
    }

    #[test]
    fn warm_variant_survives_provider_turnover() {
        let mut s = AuctionScheduler::with_epsilon(0.01).warm_start();
        let p = problem();
        s.schedule(&p).unwrap();
        // Next slot: one carried provider, one brand-new peer.
        let mut b = WelfareInstance::builder();
        let u0 = b.add_provider(PeerId::new(10), 1);
        let u2 = b.add_provider(PeerId::new(99), 1);
        let r0 = b.add_request(RequestId::new(PeerId::new(0), ChunkId::new(VideoId::new(0), 1)));
        b.add_edge(r0, u0, Valuation::new(4.0), Cost::new(0.5)).unwrap();
        b.add_edge(r0, u2, Valuation::new(4.0), Cost::new(1.5)).unwrap();
        let inst = b.build().unwrap();
        let next = SlotProblem::new(inst, vec![SimDuration::from_secs(3)]).unwrap();
        let out = s.schedule(&next).unwrap();
        assert!(
            out.welfare(&next).get() >= next.instance.optimal_welfare().get() - 2.0 * 0.01 - 1e-9
        );
    }

    /// A slot problem with a single provider `peer` at index 0 and one
    /// request from `downstream` worth `v` at cost 0.5.
    pub(crate) fn single_provider_problem(peer: u32, downstream: u32, v: f64) -> SlotProblem {
        let mut b = WelfareInstance::builder();
        let u = b.add_provider(PeerId::new(peer), 1);
        let chunk = ChunkId::new(VideoId::new(0), downstream);
        let r = b.add_request(RequestId::new(PeerId::new(downstream), chunk));
        b.add_edge(r, u, Valuation::new(v), Cost::new(0.5)).unwrap();
        let inst = b.build().unwrap();
        SlotProblem::new(inst, vec![SimDuration::from_secs(3)]).unwrap()
    }

    /// Regression (churn audit): a provider departs and a brand-new peer
    /// takes over its slot order (provider index 0). The carry is keyed by
    /// peer id, so the newcomer must start at price 0 — not inherit the
    /// departed provider's λ — and the departed entry must be dropped from
    /// the carry immediately.
    #[test]
    fn stale_prices_are_not_misapplied_after_provider_turnover() {
        let mut s = AuctionScheduler::with_epsilon(0.01).warm_start();
        // Slot 1: provider peer#10 sells out at a high price.
        let slot1 = single_provider_problem(10, 0, 6.0);
        s.schedule(&slot1).unwrap();
        let carried = s.prior.price_of(PeerId::new(10)).unwrap();
        assert!(carried > 0.0, "slot 1 must leave a positive carried price");
        // Slot 2: peer#10 left; fresh peer#77 occupies provider index 0.
        let slot2 = single_provider_problem(77, 1, 2.0);
        assert_eq!(s.prior.seed(&slot2), vec![0.0], "a new peer must not inherit a stale price");
        let out = s.schedule(&slot2).unwrap();
        // The newcomer's request is cheap (v−w = 1.5 < carried λ): had the
        // stale price leaked in by slot order, the request would have been
        // priced out and welfare lost.
        assert_eq!(out.assignment.assigned_count(), 1);
        assert_eq!(out.welfare(&slot2), slot2.instance.optimal_welfare());
        // The departed peer's entry is gone from the carry entirely.
        assert_eq!(s.prior.len(), 1);
        assert!(s.prior.price_of(PeerId::new(10)).is_none());
        assert!(s.prior.price_of(PeerId::new(77)).is_some());
    }

    /// The same turnover guarantee holds for the sharded warm scheduler,
    /// which shares the carry implementation.
    #[test]
    fn sharded_warm_scheduler_survives_provider_turnover() {
        let mut s = ShardedAuctionScheduler::with_epsilon(0.01, ShardCount::Fixed(4)).warm_start();
        assert_eq!(s.name(), "auction_sharded_warm");
        let slot1 = single_provider_problem(10, 0, 6.0);
        s.schedule(&slot1).unwrap();
        let slot2 = single_provider_problem(77, 1, 2.0);
        assert_eq!(s.prior.seed(&slot2), vec![0.0]);
        let out = s.schedule(&slot2).unwrap();
        assert_eq!(out.assignment.assigned_count(), 1);
        assert_eq!(out.welfare(&slot2), slot2.instance.optimal_welfare());
    }

    #[test]
    fn sharded_scheduler_matches_the_optimum_on_a_tiny_slot() {
        let p = problem();
        let mut s = ShardedAuctionScheduler::paper(ShardCount::Fixed(2));
        assert_eq!(s.name(), "auction_sharded");
        assert_eq!(s.shards(), ShardCount::Fixed(2));
        assert!(!s.is_warm_start());
        let out = s.schedule(&p).unwrap();
        assert_eq!(out.welfare(&p), p.instance.optimal_welfare());
    }

    #[test]
    fn sharded_scheduler_at_one_shard_equals_the_sequential_scheduler() {
        let p = problem();
        let seq = AuctionScheduler::paper().schedule(&p).unwrap();
        let sharded = ShardedAuctionScheduler::paper(ShardCount::Fixed(1)).schedule(&p).unwrap();
        assert_eq!(seq.assignment, sharded.assignment);
        assert_eq!(seq.stats, sharded.stats);
    }

    #[test]
    fn flat_scheduler_is_bit_identical_to_its_nested_counterparts() {
        let p = problem();
        let seq = AuctionScheduler::paper().schedule(&p).unwrap();
        let mut flat1 = FlatAuctionScheduler::paper(ShardCount::Fixed(1));
        assert_eq!(flat1.name(), "auction_flat");
        assert_eq!(flat1.shards(), ShardCount::Fixed(1));
        assert!(!flat1.is_warm_start());
        let f1 = flat1.schedule(&p).unwrap();
        assert_eq!(f1.assignment, seq.assignment);
        assert_eq!(f1.stats, seq.stats);

        let sharded =
            ShardedAuctionScheduler::with_epsilon(0.01, ShardCount::Fixed(2)).schedule(&p).unwrap();
        let f2 =
            FlatAuctionScheduler::with_epsilon(0.01, ShardCount::Fixed(2)).schedule(&p).unwrap();
        assert_eq!(f2.assignment, sharded.assignment);
        assert_eq!(f2.stats, sharded.stats);
    }

    #[test]
    fn flat_scheduler_uses_an_attached_csr_compilation() {
        let p = problem();
        let attached = p.clone().with_csr(p.csr_instance());
        let plain = FlatAuctionScheduler::paper(ShardCount::Fixed(1)).schedule(&p).unwrap();
        let cached = FlatAuctionScheduler::paper(ShardCount::Fixed(1)).schedule(&attached).unwrap();
        assert_eq!(plain.assignment, cached.assignment);
        assert_eq!(plain.stats, cached.stats);
    }

    /// The turnover guarantee holds for the flat warm scheduler, which
    /// shares the carry implementation with the nested schedulers.
    #[test]
    fn flat_warm_scheduler_survives_provider_turnover() {
        let mut s = FlatAuctionScheduler::with_epsilon(0.01, ShardCount::Fixed(4)).warm_start();
        assert_eq!(s.name(), "auction_flat_warm");
        assert!(s.is_warm_start());
        let slot1 = single_provider_problem(10, 0, 6.0);
        s.schedule(&slot1).unwrap();
        let slot2 = single_provider_problem(77, 1, 2.0);
        assert_eq!(s.prior.seed(&slot2), vec![0.0]);
        let out = s.schedule(&slot2).unwrap();
        assert_eq!(out.assignment.assigned_count(), 1);
        assert_eq!(out.welfare(&slot2), slot2.instance.optimal_welfare());
    }

    /// Probes are an observer: enabling them changes no outcome, and the
    /// taken report agrees with the schedule's own stats.
    #[test]
    fn probes_observe_without_perturbing_the_schedule() {
        let p = problem();
        for shards in [ShardCount::Fixed(1), ShardCount::Fixed(2)] {
            let bare = FlatAuctionScheduler::with_epsilon(0.01, shards).schedule(&p).unwrap();
            let mut probed = FlatAuctionScheduler::with_epsilon(0.01, shards);
            probed.set_probes(true);
            let out = probed.schedule(&p).unwrap();
            assert_eq!(out.assignment, bare.assignment);
            assert_eq!(out.stats, bare.stats);
            let report = probed.take_probe_report().expect("probes are on");
            assert_eq!(report.bids, out.stats.bids);
            assert_eq!(report.rounds, out.stats.rounds);
            assert_eq!(report.assigned, out.assignment.assigned_count() as u64);
            assert!(report.slack.abs() <= 0.01 * (p.instance.request_count() as f64 + 1.0));
            // Taking drained the accumulator.
            assert!(probed.take_probe_report().expect("still on").is_empty());
            probed.set_probes(false);
            assert!(probed.take_probe_report().is_none());
        }
        // The nested schedulers expose the same observer contract.
        let mut sync = AuctionScheduler::with_epsilon(0.01);
        sync.set_probes(true);
        let out = sync.schedule(&p).unwrap();
        let report = sync.take_probe_report().expect("probes are on");
        assert_eq!(report.bids, out.stats.bids);
        let mut sharded = ShardedAuctionScheduler::with_epsilon(0.01, ShardCount::Fixed(2));
        sharded.set_probes(true);
        let out = sharded.schedule(&p).unwrap();
        let report = sharded.take_probe_report().expect("probes are on");
        assert_eq!(report.bids, out.stats.bids);
    }

    /// Warm flat and warm nested schedulers stay bit-identical across a
    /// slot sequence (same carry, same engines).
    #[test]
    fn flat_warm_matches_nested_warm_across_slots() {
        let mut nested =
            ShardedAuctionScheduler::with_epsilon(0.01, ShardCount::Fixed(2)).warm_start();
        let mut flat = FlatAuctionScheduler::with_epsilon(0.01, ShardCount::Fixed(2)).warm_start();
        for slot in [problem(), problem(), single_provider_problem(10, 0, 6.0), problem()] {
            let a = nested.schedule(&slot).unwrap();
            let b = flat.schedule(&slot).unwrap();
            assert_eq!(a.assignment, b.assignment);
            assert_eq!(a.stats, b.stats);
        }
    }
}
