//! Property tests for all schedulers: feasibility on arbitrary instances
//! and the welfare hierarchy (exact ≥ auction ≥ heuristics never violated
//! beyond tolerance).

use p2p_core::WelfareInstance;
use p2p_sched::{
    AuctionScheduler, ChunkScheduler, ExactScheduler, GreedyScheduler, RandomScheduler,
    SimpleLocalityScheduler, SlotProblem,
};
use p2p_types::{ChunkId, Cost, PeerId, RequestId, SimDuration, Valuation, VideoId};
use proptest::prelude::*;

fn arb_problem() -> impl Strategy<Value = SlotProblem> {
    let caps = prop::collection::vec(1u32..5, 1..6);
    caps.prop_flat_map(|caps| {
        let p = caps.len();
        let edge = (0..p, 0.8f64..8.0, 0.0f64..10.0);
        let request = prop::collection::vec(edge, 1..=p);
        let requests = prop::collection::vec((request, 0u64..20_000_000), 0..15);
        (Just(caps), requests).prop_map(|(caps, reqs)| {
            let mut b = WelfareInstance::builder();
            for (i, c) in caps.iter().enumerate() {
                b.add_provider(PeerId::new(100 + i as u32), *c);
            }
            let mut urgency = Vec::new();
            for (d, (edges, urg)) in reqs.into_iter().enumerate() {
                let r = b.add_request(RequestId::new(
                    PeerId::new(d as u32),
                    ChunkId::new(VideoId::new(0), d as u32),
                ));
                let mut seen = std::collections::HashSet::new();
                for (u, v, w) in edges {
                    if seen.insert(u) {
                        b.add_edge(r, u, Valuation::new(v), Cost::new(w)).unwrap();
                    }
                }
                urgency.push(SimDuration::from_micros(urg));
            }
            SlotProblem::new(b.build().unwrap(), urgency).unwrap()
        })
    })
}

fn all_schedulers() -> Vec<Box<dyn ChunkScheduler>> {
    vec![
        Box::new(AuctionScheduler::paper()),
        Box::new(AuctionScheduler::with_epsilon(0.01)),
        Box::new(SimpleLocalityScheduler::new()),
        Box::new(SimpleLocalityScheduler::new().with_max_tries(usize::MAX)),
        Box::new(RandomScheduler::new(7)),
        Box::new(GreedyScheduler::new()),
        Box::new(ExactScheduler::new()),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Every scheduler returns a capacity- and index-feasible schedule.
    #[test]
    fn every_scheduler_is_feasible(problem in arb_problem()) {
        for mut s in all_schedulers() {
            let out = s.schedule(&problem).unwrap();
            prop_assert!(out.assignment.validate(&problem.instance).is_ok(),
                "{} produced an infeasible schedule", s.name());
            prop_assert_eq!(out.assignment.choices().len(), problem.request_count());
        }
    }

    /// Nothing beats the exact optimum; the auction matches it.
    #[test]
    fn welfare_hierarchy(problem in arb_problem()) {
        let exact = problem.instance.optimal_welfare().get();
        for mut s in all_schedulers() {
            let w = s.schedule(&problem).unwrap().welfare(&problem).get();
            prop_assert!(w <= exact + 1e-6, "{} beat the optimum", s.name());
        }
        let auction = AuctionScheduler::paper().schedule(&problem).unwrap();
        prop_assert!((auction.welfare(&problem).get() - exact).abs() < 1e-6);
    }

    /// The auction never schedules a transfer that destroys welfare; the
    /// locality baseline has no such guarantee.
    #[test]
    fn auction_never_downloads_at_a_loss(problem in arb_problem()) {
        let out = AuctionScheduler::paper().schedule(&problem).unwrap();
        for (r, choice) in out.assignment.choices().iter().enumerate() {
            if let Some(e) = choice {
                prop_assert!(problem.instance.request(r).edges[*e].utility().get() >= 0.0);
            }
        }
    }

    /// Deterministic schedulers are reproducible.
    #[test]
    fn schedulers_are_deterministic(problem in arb_problem()) {
        let a1 = AuctionScheduler::paper().schedule(&problem).unwrap();
        let a2 = AuctionScheduler::paper().schedule(&problem).unwrap();
        prop_assert_eq!(a1.assignment, a2.assignment);
        let l1 = SimpleLocalityScheduler::new().schedule(&problem).unwrap();
        let l2 = SimpleLocalityScheduler::new().schedule(&problem).unwrap();
        prop_assert_eq!(l1.assignment, l2.assignment);
        let r1 = RandomScheduler::new(3).schedule(&problem).unwrap();
        let r2 = RandomScheduler::new(3).schedule(&problem).unwrap();
        prop_assert_eq!(r1.assignment, r2.assignment);
    }

    /// Giving the locality baseline more retries never reduces its
    /// assignment count (monotone in the retry budget).
    #[test]
    fn locality_retries_are_monotone(problem in arb_problem()) {
        let one = SimpleLocalityScheduler::new()
            .with_max_tries(1)
            .schedule(&problem)
            .unwrap();
        let many = SimpleLocalityScheduler::new()
            .with_max_tries(usize::MAX)
            .schedule(&problem)
            .unwrap();
        prop_assert!(many.assignment.assigned_count() >= one.assignment.assigned_count());
    }
}
