//! Typed mid-run events, applied to the streaming [`System`] at slot
//! boundaries.

use p2p_streaming::System;
use p2p_types::{IspId, Result, VideoId};

/// One scenario event. Events mutate the running system through its
/// controlled hooks; every event is deterministic given the system seed, so
/// the same timeline reproduces the identical workload under any scheduler.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ScenarioEvent {
    /// A join surge: `peers` watchers arrive at once, optionally all
    /// watching one `video` and/or landing in one `isp`.
    FlashCrowd {
        /// Crowd size.
        peers: usize,
        /// Pin the crowd to one title (`None` = Zipf-drawn videos).
        video: Option<VideoId>,
        /// Pin the crowd to one ISP (`None` = round-robin spread).
        isp: Option<IspId>,
    },
    /// Global inter-ISP link repricing: every cross-ISP link cost is
    /// multiplied by `factor` (1.0 restores the base model).
    LinkReprice {
        /// Multiplier on inter-ISP link costs.
        factor: f64,
    },
    /// One ISP's transit degrades: inter-ISP links touching `isp` are
    /// repriced by `factor` (intra-ISP links are unaffected).
    IspOutage {
        /// The affected ISP.
        isp: IspId,
        /// Multiplier on that ISP's inter-ISP link costs.
        factor: f64,
    },
    /// The ISP's transit recovers: its link-cost multiplier returns to 1.
    IspRecovery {
        /// The recovering ISP.
        isp: IspId,
    },
    /// Up to `count` seeds fail (lowest peer ids first), optionally only
    /// seeds of one `video`.
    SeedFailure {
        /// Maximum number of seeds to remove.
        count: usize,
        /// Restrict failures to one video's seeds.
        video: Option<VideoId>,
    },
    /// Late seeding: `count` fresh seeds for `video` come up in `isp`.
    LateSeed {
        /// The video to re-seed.
        video: VideoId,
        /// Where the new seeds live.
        isp: IspId,
        /// Number of seeds to add.
        count: usize,
    },
    /// The Poisson churn rate jumps to `rate` peers/s (enabling churn if
    /// it was off).
    ChurnBurst {
        /// New arrival rate, peers per second.
        rate: f64,
    },
    /// Video popularity re-weights to a Zipf–Mandelbrot law with the given
    /// parameters (a large `alpha` concentrates demand on the catalog
    /// head).
    PopularityShift {
        /// Zipf exponent.
        alpha: f64,
        /// Mandelbrot flattening constant.
        q: f64,
    },
    /// Every peer in `isp` uploads at `factor` × its capacity until the
    /// throttle is lifted (factor 1.0).
    IspThrottle {
        /// The throttled ISP.
        isp: IspId,
        /// Upload-capacity multiplier.
        factor: f64,
    },
}

impl ScenarioEvent {
    /// The spec-file `kind` string of this event.
    pub fn kind(&self) -> &'static str {
        match self {
            ScenarioEvent::FlashCrowd { .. } => "flash_crowd",
            ScenarioEvent::LinkReprice { .. } => "link_reprice",
            ScenarioEvent::IspOutage { .. } => "isp_outage",
            ScenarioEvent::IspRecovery { .. } => "isp_recovery",
            ScenarioEvent::SeedFailure { .. } => "seed_failure",
            ScenarioEvent::LateSeed { .. } => "late_seed",
            ScenarioEvent::ChurnBurst { .. } => "churn_burst",
            ScenarioEvent::PopularityShift { .. } => "popularity_shift",
            ScenarioEvent::IspThrottle { .. } => "isp_throttle",
        }
    }

    /// Applies the event to a running system.
    ///
    /// # Errors
    ///
    /// Propagates [`p2p_types::P2pError::InvalidConfig`] for parameters
    /// that do not fit the system (unknown video/ISP, bad factors).
    pub fn apply(&self, sys: &mut System) -> Result<()> {
        match *self {
            ScenarioEvent::FlashCrowd { peers, video, isp } => {
                sys.inject_flash_crowd(peers, video, isp)
            }
            ScenarioEvent::LinkReprice { factor } => sys.set_inter_link_cost_scale(factor),
            ScenarioEvent::IspOutage { isp, factor } => sys.set_isp_link_cost_scale(isp, factor),
            ScenarioEvent::IspRecovery { isp } => sys.set_isp_link_cost_scale(isp, 1.0),
            ScenarioEvent::SeedFailure { count, video } => {
                sys.fail_seeds(count, video);
                Ok(())
            }
            ScenarioEvent::LateSeed { video, isp, count } => {
                for _ in 0..count {
                    sys.add_seed(video, isp)?;
                }
                Ok(())
            }
            ScenarioEvent::ChurnBurst { rate } => sys.set_churn_rate(rate),
            ScenarioEvent::PopularityShift { alpha, q } => sys.set_churn_popularity(alpha, q),
            ScenarioEvent::IspThrottle { isp, factor } => sys.set_isp_throttle(isp, factor),
        }
    }
}

impl std::fmt::Display for ScenarioEvent {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match *self {
            ScenarioEvent::FlashCrowd { peers, video, isp } => {
                write!(f, "flash_crowd: {peers} peers")?;
                if let Some(v) = video {
                    write!(f, ", video {}", v.index())?;
                }
                if let Some(i) = isp {
                    write!(f, ", isp {}", i.index())?;
                }
                Ok(())
            }
            ScenarioEvent::LinkReprice { factor } => {
                write!(f, "link_reprice: inter-ISP costs x{factor}")
            }
            ScenarioEvent::IspOutage { isp, factor } => {
                write!(f, "isp_outage: isp {} links x{factor}", isp.index())
            }
            ScenarioEvent::IspRecovery { isp } => {
                write!(f, "isp_recovery: isp {} links restored", isp.index())
            }
            ScenarioEvent::SeedFailure { count, video } => {
                write!(f, "seed_failure: up to {count} seeds")?;
                if let Some(v) = video {
                    write!(f, " of video {}", v.index())?;
                }
                Ok(())
            }
            ScenarioEvent::LateSeed { video, isp, count } => {
                write!(
                    f,
                    "late_seed: {count} seeds for video {} in isp {}",
                    video.index(),
                    isp.index()
                )
            }
            ScenarioEvent::ChurnBurst { rate } => write!(f, "churn_burst: {rate} peers/s"),
            ScenarioEvent::PopularityShift { alpha, q } => {
                write!(f, "popularity_shift: zipf(alpha={alpha}, q={q})")
            }
            ScenarioEvent::IspThrottle { isp, factor } => {
                write!(f, "isp_throttle: isp {} capacity x{factor}", isp.index())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use p2p_sched::AuctionScheduler;
    use p2p_streaming::SystemConfig;

    fn sys() -> System {
        System::new(SystemConfig::small_test(), Box::new(AuctionScheduler::paper())).unwrap()
    }

    #[test]
    fn every_event_applies_cleanly() {
        let mut s = sys();
        let events = [
            ScenarioEvent::FlashCrowd { peers: 3, video: Some(VideoId::new(0)), isp: None },
            ScenarioEvent::LinkReprice { factor: 2.0 },
            ScenarioEvent::IspOutage { isp: IspId::new(0), factor: 30.0 },
            ScenarioEvent::IspRecovery { isp: IspId::new(0) },
            ScenarioEvent::SeedFailure { count: 1, video: None },
            ScenarioEvent::LateSeed { video: VideoId::new(0), isp: IspId::new(1), count: 2 },
            ScenarioEvent::ChurnBurst { rate: 4.0 },
            ScenarioEvent::PopularityShift { alpha: 2.0, q: 1.0 },
            ScenarioEvent::IspThrottle { isp: IspId::new(1), factor: 0.5 },
        ];
        for e in &events {
            e.apply(&mut s).unwrap();
            assert!(!e.kind().is_empty());
            assert!(!e.to_string().is_empty());
        }
        s.run_slots(2).unwrap();
    }

    #[test]
    fn invalid_parameters_surface_errors() {
        let mut s = sys();
        let bad = [
            ScenarioEvent::FlashCrowd { peers: 1, video: Some(VideoId::new(99)), isp: None },
            ScenarioEvent::LinkReprice { factor: 0.0 },
            ScenarioEvent::IspOutage { isp: IspId::new(9), factor: 2.0 },
            ScenarioEvent::LateSeed { video: VideoId::new(99), isp: IspId::new(0), count: 1 },
            ScenarioEvent::ChurnBurst { rate: -1.0 },
            ScenarioEvent::PopularityShift { alpha: f64::NAN, q: 0.0 },
            ScenarioEvent::IspThrottle { isp: IspId::new(0), factor: -2.0 },
        ];
        for e in &bad {
            assert!(e.apply(&mut s).is_err(), "{e} must be rejected");
        }
    }
}
