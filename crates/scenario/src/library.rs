//! Built-in named scenarios.
//!
//! Each scenario is stored as spec text and goes through the real parser,
//! so the library doubles as living documentation of the file format: dump
//! a spec with [`builtin_spec`], tweak it, and load it back with
//! [`crate::parse_scenario`].

use crate::spec::parse_scenario;
use crate::timeline::Scenario;
use p2p_types::{P2pError, Result};

/// `flash_crowd`: a popular release triggers a join surge, then a second
/// regional wave hits one ISP.
const FLASH_CROWD: &str = r#"
name = "flash_crowd"
description = "a release surge on one title, then a regional second wave"
profile = "small"
seed = 42
slots = 36
peers = 12
seeds_per_video = 1      # scarce seeds: the crowd must lean on the swarm

[[event]]                # the release goes viral
at_slot = 10
kind = "flash_crowd"
peers = 40
video = 0                # everyone wants the same title

[[event]]                # a second wave, concentrated in one region
at_slot = 22
kind = "flash_crowd"
peers = 25
isp = 1
"#;

/// `isp_outage`: one ISP's transit degrades mid-run and later recovers.
const ISP_OUTAGE: &str = r#"
name = "isp_outage"
description = "ISP 0's transit degrades 40x mid-run, then recovers"
profile = "small"
seed = 42
slots = 36
peers = 10
churn = true
arrival_rate = 2.0
seeds_per_video = 1      # one seed per video: half the demand is cross-ISP

[[event]]                # congestion event: ISP 0's transit reprices 40x
at_slot = 10
kind = "isp_outage"
isp = 0
factor = 40.0

[[event]]                # operators fix the link
at_slot = 24
kind = "isp_recovery"
isp = 0
"#;

/// `prime_time`: an evening load spike with demand concentrating on the
/// catalog head, then cooling off.
const PRIME_TIME: &str = r#"
name = "prime_time"
description = "evening surge: churn x8 with head-heavy demand, then cool-off"
profile = "small"
seed = 42
slots = 40
churn = true
arrival_rate = 1.0

[[event]]                # prime time begins: joins jump to 8/s
at_slot = 10
kind = "churn_burst"
rate = 8.0

[[event]]                # everyone watches tonight's premieres
at_slot = 12
kind = "popularity_shift"
alpha = 3.0
q = 0.5

[[event]]                # back to the overnight baseline
at_slot = 28
kind = "churn_burst"
rate = 1.0
"#;

/// `seed_starvation`: a video loses every seed, limps along on peer-held
/// chunks, and is eventually re-seeded.
const SEED_STARVATION: &str = r#"
name = "seed_starvation"
description = "video 0 loses all seeds, survives on the swarm, is re-seeded late"
profile = "small"
seed = 42
slots = 36
peers = 10
churn = true
arrival_rate = 1.5

[[event]]                # all of video 0's seeds fail at once
at_slot = 8
kind = "seed_failure"
count = 99
video = 0

[[event]]                # late seeding restores the title
at_slot = 22
kind = "late_seed"
video = 0
isp = 0
count = 2
"#;

/// `paper_flash_crowd`: the Sec. V evaluation system (5 ISPs, 100
/// videos, 10 s slots) under a release-day surge.
const PAPER_FLASH_CROWD: &str = r#"
name = "paper_flash_crowd"
description = "Sec. V system: release surge to hundreds of peers, then a regional wave"
profile = "paper"
seed = 42
slots = 30
peers = 80
churn = true
arrival_rate = 2.0

[[event]]                # the release goes viral across every ISP
at_slot = 8
kind = "flash_crowd"
peers = 200
video = 0

[[event]]                # a second wave inside one access ISP
at_slot = 18
kind = "flash_crowd"
peers = 80
isp = 3
"#;

/// `paper_prime_time`: the Sec. V system through an evening load cycle.
const PAPER_PRIME_TIME: &str = r#"
name = "paper_prime_time"
description = "Sec. V system: evening churn x6 with head-heavy demand, then cool-off"
profile = "paper"
seed = 42
slots = 30
peers = 60
churn = true
arrival_rate = 2.0

[[event]]                # prime time begins
at_slot = 6
kind = "churn_burst"
rate = 12.0

[[event]]                # the catalog head dominates tonight
at_slot = 8
kind = "popularity_shift"
alpha = 3.0
q = 0.5

[[event]]                # overnight baseline
at_slot = 22
kind = "churn_burst"
rate = 2.0
"#;

/// `paper_isp_outage`: the Sec. V system with a mid-run transit
/// degradation — the regime where ISP-aware costs matter most.
const PAPER_ISP_OUTAGE: &str = r#"
name = "paper_isp_outage"
description = "Sec. V system: ISP 2's transit reprices 40x mid-run, then recovers"
profile = "paper"
seed = 42
slots = 30
peers = 80
churn = true
arrival_rate = 2.0
seeds_per_video = 2      # scarce seeds force cross-ISP traffic into the outage

[[event]]                # congestion: ISP 2's transit reprices 40x
at_slot = 8
kind = "isp_outage"
isp = 2
factor = 40.0

[[event]]                # operators fix the link
at_slot = 20
kind = "isp_recovery"
isp = 2
"#;

/// Names of all built-in scenarios, in presentation order: the fast
/// small-profile quartet, then the `paper`-profile suite sized like the
/// paper's Sec. V evaluation (5 ISPs, 100 videos, 10 s slots).
pub const BUILTIN_NAMES: [&str; 7] = [
    "flash_crowd",
    "isp_outage",
    "prime_time",
    "seed_starvation",
    "paper_flash_crowd",
    "paper_prime_time",
    "paper_isp_outage",
];

/// The spec text of a built-in scenario, if the name is known.
pub fn builtin_spec(name: &str) -> Option<&'static str> {
    match name {
        "flash_crowd" => Some(FLASH_CROWD),
        "isp_outage" => Some(ISP_OUTAGE),
        "prime_time" => Some(PRIME_TIME),
        "seed_starvation" => Some(SEED_STARVATION),
        "paper_flash_crowd" => Some(PAPER_FLASH_CROWD),
        "paper_prime_time" => Some(PAPER_PRIME_TIME),
        "paper_isp_outage" => Some(PAPER_ISP_OUTAGE),
        _ => None,
    }
}

/// Loads a built-in scenario by name.
///
/// # Errors
///
/// Returns [`P2pError::InvalidConfig`] for unknown names.
///
/// # Examples
///
/// ```
/// let s = p2p_scenario::builtin("flash_crowd").unwrap();
/// assert_eq!(s.events.len(), 2);
/// assert!(p2p_scenario::builtin("nope").is_err());
/// ```
pub fn builtin(name: &str) -> Result<Scenario> {
    let Some(spec) = builtin_spec(name) else {
        return Err(P2pError::invalid_config(
            "scenario",
            format!("unknown scenario `{name}` (built-ins: {})", BUILTIN_NAMES.join(", ")),
        ));
    };
    parse_scenario(spec)
}

/// All built-in scenarios, in presentation order.
///
/// # Panics
///
/// Never panics: every built-in spec is parsed in the test suite.
pub fn builtins() -> Vec<Scenario> {
    BUILTIN_NAMES.iter().map(|n| builtin(n).expect("built-in specs parse")).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::ScenarioEvent;

    #[test]
    fn every_builtin_parses_and_validates() {
        let all = builtins();
        assert_eq!(all.len(), BUILTIN_NAMES.len());
        for (s, name) in all.iter().zip(BUILTIN_NAMES) {
            assert_eq!(s.name, name, "spec name must match its registry key");
            s.validate().unwrap();
            assert!(!s.events.is_empty(), "{name} must have a timeline");
        }
    }

    #[test]
    fn builtins_cover_the_event_space() {
        let kinds: std::collections::BTreeSet<&str> = builtins()
            .iter()
            .flat_map(|s| s.events.iter().map(|e| e.event.kind()).collect::<Vec<_>>())
            .collect();
        for required in [
            "flash_crowd",
            "isp_outage",
            "churn_burst",
            "popularity_shift",
            "seed_failure",
            "late_seed",
        ] {
            assert!(kinds.contains(required), "no built-in exercises {required}");
        }
    }

    #[test]
    fn paper_suite_runs_the_sec_v_system() {
        use crate::timeline::Profile;
        let papers: Vec<_> = BUILTIN_NAMES.iter().filter(|n| n.starts_with("paper_")).collect();
        assert_eq!(papers.len(), 3, "the Sec. V suite has three scenarios");
        for name in papers {
            let s = builtin(name).unwrap();
            assert_eq!(s.profile, Profile::Paper, "{name} must use the paper profile");
            s.validate().unwrap();
            let config = s.base_config();
            assert_eq!(config.isp_count, 5, "{name}: Sec. V runs 5 ISPs");
            assert_eq!(config.video_count, 100, "{name}: Sec. V runs 100 videos");
        }
    }

    #[test]
    fn unknown_name_lists_the_builtins() {
        let e = builtin("warp").unwrap_err().to_string();
        assert!(e.contains("flash_crowd") && e.contains("seed_starvation"), "{e}");
    }

    #[test]
    fn flash_crowd_is_a_flash_crowd() {
        let s = builtin("flash_crowd").unwrap();
        assert!(matches!(s.events[0].event, ScenarioEvent::FlashCrowd { peers: 40, .. }));
    }
}
