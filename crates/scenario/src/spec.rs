//! The declarative scenario file format and its parser.
//!
//! Scenarios are data, not code. Because the build environment's `serde` is
//! a no-op shim, the format is a small self-contained TOML subset parsed by
//! hand:
//!
//! * top-level `key = value` lines describe the base workload (`name`,
//!   `description`, `profile`, `seed`, `slots`, `peers`, `churn`,
//!   `arrival_rate`, `seeds_per_video`, `slot_build`, `shards` —
//!   `"auto"` or a positive shard count for `auction_sharded` — and
//!   `net` — `"ideal"`, `"lan"` or `"lossy"`, the fault-injection
//!   preset for the virtual-time `auction_sim` schedulers);
//! * each `[[event]]` table adds one timed event;
//! * values are quoted strings, integers, floats or `true`/`false`;
//! * `#` starts a comment (outside quotes); blank lines are ignored.
//!
//! ```toml
//! name = "surge"                # CLI identifier
//! description = "a join surge"  # free text
//! profile = "small"             # "small" | "paper"
//! seed = 42
//! slots = 30
//! peers = 12                    # initial static watchers
//! churn = false                 # Poisson churn from slot 0
//!
//! [[event]]
//! at_slot = 8
//! kind = "flash_crowd"
//! peers = 40
//! video = 0                     # optional: pin the crowd to one title
//! ```
//!
//! Event kinds and their fields (all slots are 0-based, fired at slot
//! start): `flash_crowd` (`peers`, optional `video`/`isp`), `link_reprice`
//! (`factor`), `isp_outage` (`isp`, `factor`), `isp_recovery` (`isp`),
//! `seed_failure` (`count`, optional `video`), `late_seed` (`video`,
//! `isp`, optional `count` = 1), `churn_burst` (`rate`),
//! `popularity_shift` (`alpha`, `q`), `isp_throttle` (`isp`, `factor`).
//!
//! Specs loaded from disk ([`parse_scenario_file`]) may additionally start
//! from a base spec with `include = "base.toml"` (path relative to the
//! including file): the derived file's top-level keys override the base's
//! key-by-key, and its `[[event]]` tables are appended after the base's.
//! Chains nest (a base may itself include) up to eight files; cycles are
//! rejected.

use crate::event::ScenarioEvent;
use crate::timeline::{Profile, Scenario, TimedEvent};
use p2p_types::{IspId, P2pError, Result, VideoId};

/// A parsed spec value.
#[derive(Debug, Clone, PartialEq)]
enum Value {
    Str(String),
    Int(i64),
    Float(f64),
    Bool(bool),
}

impl Value {
    fn type_name(&self) -> &'static str {
        match self {
            Value::Str(_) => "string",
            Value::Int(_) => "integer",
            Value::Float(_) => "float",
            Value::Bool(_) => "boolean",
        }
    }
}

/// One `key = value` binding with its source line (for error messages).
#[derive(Debug, Clone)]
struct Binding {
    key: String,
    value: Value,
    line: usize,
}

/// A flat table of bindings: the top level, or one `[[event]]`.
#[derive(Debug, Clone, Default)]
struct Table {
    bindings: Vec<Binding>,
    /// Line of the `[[event]]` header (0 for the top level).
    line: usize,
}

impl Table {
    fn get(&self, key: &str) -> Option<&Binding> {
        self.bindings.iter().find(|b| b.key == key)
    }

    fn check_known(&self, known: &[&str], context: &str) -> Result<()> {
        for b in &self.bindings {
            if !known.contains(&b.key.as_str()) {
                return Err(err(
                    b.line,
                    format!("unknown {context} key `{}` (expected one of {known:?})", b.key),
                ));
            }
        }
        Ok(())
    }

    fn str(&self, key: &str) -> Result<Option<String>> {
        match self.get(key) {
            None => Ok(None),
            Some(Binding { value: Value::Str(s), .. }) => Ok(Some(s.clone())),
            Some(b) => {
                Err(err(b.line, format!("`{key}` must be a string, got {}", b.value.type_name())))
            }
        }
    }

    fn u64(&self, key: &str) -> Result<Option<u64>> {
        match self.get(key) {
            None => Ok(None),
            Some(Binding { value: Value::Int(i), line, .. }) => u64::try_from(*i)
                .map(Some)
                .map_err(|_| err(*line, format!("`{key}` must be non-negative"))),
            Some(b) => {
                Err(err(b.line, format!("`{key}` must be an integer, got {}", b.value.type_name())))
            }
        }
    }

    fn f64(&self, key: &str) -> Result<Option<f64>> {
        match self.get(key) {
            None => Ok(None),
            Some(Binding { value: Value::Float(f), .. }) => Ok(Some(*f)),
            Some(Binding { value: Value::Int(i), .. }) => Ok(Some(*i as f64)),
            Some(b) => {
                Err(err(b.line, format!("`{key}` must be a number, got {}", b.value.type_name())))
            }
        }
    }

    fn bool(&self, key: &str) -> Result<Option<bool>> {
        match self.get(key) {
            None => Ok(None),
            Some(Binding { value: Value::Bool(v), .. }) => Ok(Some(*v)),
            Some(b) => {
                Err(err(b.line, format!("`{key}` must be true/false, got {}", b.value.type_name())))
            }
        }
    }

    fn require_u64(&self, key: &str) -> Result<u64> {
        self.u64(key)?.ok_or_else(|| err(self.line, format!("missing required key `{key}`")))
    }

    fn require_f64(&self, key: &str) -> Result<f64> {
        self.f64(key)?.ok_or_else(|| err(self.line, format!("missing required key `{key}`")))
    }

    fn require_str(&self, key: &str) -> Result<String> {
        self.str(key)?.ok_or_else(|| err(self.line, format!("missing required key `{key}`")))
    }

    /// The source line of a present key (table header line otherwise).
    fn line_of(&self, key: &str) -> usize {
        self.get(key).map_or(self.line, |b| b.line)
    }

    fn u32(&self, key: &str) -> Result<Option<u32>> {
        match self.u64(key)? {
            None => Ok(None),
            Some(v) => u32::try_from(v)
                .map(Some)
                .map_err(|_| err(self.line_of(key), format!("`{key}` = {v} is out of range"))),
        }
    }

    fn video(&self, key: &str) -> Result<Option<VideoId>> {
        Ok(self.u32(key)?.map(VideoId::new))
    }

    fn isp(&self, key: &str) -> Result<Option<IspId>> {
        match self.u64(key)? {
            None => Ok(None),
            Some(v) => u16::try_from(v)
                .map(|v| Some(IspId::new(v)))
                .map_err(|_| err(self.line_of(key), format!("`{key}` = {v} is out of range"))),
        }
    }

    fn require_isp(&self, key: &str) -> Result<IspId> {
        self.isp(key)?.ok_or_else(|| err(self.line, format!("missing required key `{key}`")))
    }
}

fn err(line: usize, reason: impl std::fmt::Display) -> P2pError {
    P2pError::invalid_config("scenario_spec", format!("line {line}: {reason}"))
}

/// Strips a trailing comment, respecting double quotes.
fn strip_comment(line: &str) -> &str {
    let mut in_str = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => {}
        }
    }
    line
}

fn parse_value(raw: &str, line: usize) -> Result<Value> {
    let raw = raw.trim();
    if raw.is_empty() {
        return Err(err(line, "missing value"));
    }
    if let Some(stripped) = raw.strip_prefix('"') {
        let Some(inner) = stripped.strip_suffix('"') else {
            return Err(err(line, "unterminated string"));
        };
        if inner.contains('"') {
            return Err(err(line, "embedded quotes are not supported"));
        }
        return Ok(Value::Str(inner.to_string()));
    }
    match raw {
        "true" => return Ok(Value::Bool(true)),
        "false" => return Ok(Value::Bool(false)),
        _ => {}
    }
    if let Ok(i) = raw.parse::<i64>() {
        return Ok(Value::Int(i));
    }
    if let Ok(f) = raw.parse::<f64>() {
        if f.is_finite() {
            return Ok(Value::Float(f));
        }
    }
    Err(err(line, format!("cannot parse value `{raw}`")))
}

/// Splits the spec text into the top-level table and one table per
/// `[[event]]`.
fn tokenize(text: &str) -> Result<(Table, Vec<Table>)> {
    let mut top = Table::default();
    let mut events: Vec<Table> = Vec::new();
    for (idx, raw_line) in text.lines().enumerate() {
        let line_no = idx + 1;
        let line = strip_comment(raw_line).trim();
        if line.is_empty() {
            continue;
        }
        if line == "[[event]]" {
            events.push(Table { bindings: Vec::new(), line: line_no });
            continue;
        }
        if line.starts_with('[') {
            return Err(err(
                line_no,
                format!("unsupported section `{line}` (only [[event]] exists)"),
            ));
        }
        let Some((key, value)) = line.split_once('=') else {
            return Err(err(line_no, format!("expected `key = value`, got `{line}`")));
        };
        let key = key.trim();
        if key.is_empty() || !key.chars().all(|c| c.is_ascii_alphanumeric() || c == '_') {
            return Err(err(line_no, format!("invalid key `{key}`")));
        }
        let target = events.last_mut().unwrap_or(&mut top);
        if target.get(key).is_some() {
            return Err(err(line_no, format!("duplicate key `{key}`")));
        }
        target.bindings.push(Binding {
            key: key.to_string(),
            value: parse_value(value, line_no)?,
            line: line_no,
        });
    }
    Ok((top, events))
}

fn parse_event(table: &Table) -> Result<TimedEvent> {
    let at_slot = table.require_u64("at_slot")?;
    let kind = table.require_str("kind")?;
    let event = match kind.as_str() {
        "flash_crowd" => {
            table.check_known(&["at_slot", "kind", "peers", "video", "isp"], "flash_crowd")?;
            ScenarioEvent::FlashCrowd {
                peers: table.require_u64("peers")? as usize,
                video: table.video("video")?,
                isp: table.isp("isp")?,
            }
        }
        "link_reprice" => {
            table.check_known(&["at_slot", "kind", "factor"], "link_reprice")?;
            ScenarioEvent::LinkReprice { factor: table.require_f64("factor")? }
        }
        "isp_outage" => {
            table.check_known(&["at_slot", "kind", "isp", "factor"], "isp_outage")?;
            ScenarioEvent::IspOutage {
                isp: table.require_isp("isp")?,
                factor: table.require_f64("factor")?,
            }
        }
        "isp_recovery" => {
            table.check_known(&["at_slot", "kind", "isp"], "isp_recovery")?;
            ScenarioEvent::IspRecovery { isp: table.require_isp("isp")? }
        }
        "seed_failure" => {
            table.check_known(&["at_slot", "kind", "count", "video"], "seed_failure")?;
            ScenarioEvent::SeedFailure {
                count: table.require_u64("count")? as usize,
                video: table.video("video")?,
            }
        }
        "late_seed" => {
            table.check_known(&["at_slot", "kind", "video", "isp", "count"], "late_seed")?;
            ScenarioEvent::LateSeed {
                video: table
                    .video("video")?
                    .ok_or_else(|| err(table.line, "missing required key `video`"))?,
                isp: table.require_isp("isp")?,
                count: table.u64("count")?.unwrap_or(1) as usize,
            }
        }
        "churn_burst" => {
            table.check_known(&["at_slot", "kind", "rate"], "churn_burst")?;
            ScenarioEvent::ChurnBurst { rate: table.require_f64("rate")? }
        }
        "popularity_shift" => {
            table.check_known(&["at_slot", "kind", "alpha", "q"], "popularity_shift")?;
            ScenarioEvent::PopularityShift {
                alpha: table.require_f64("alpha")?,
                q: table.require_f64("q")?,
            }
        }
        "isp_throttle" => {
            table.check_known(&["at_slot", "kind", "isp", "factor"], "isp_throttle")?;
            ScenarioEvent::IspThrottle {
                isp: table.require_isp("isp")?,
                factor: table.require_f64("factor")?,
            }
        }
        other => return Err(err(table.line, format!("unknown event kind `{other}`"))),
    };
    Ok(TimedEvent { at_slot, event })
}

/// Parses a scenario spec (see the module docs for the format) and
/// validates the result.
///
/// # Errors
///
/// Returns [`P2pError::InvalidConfig`] with a line-numbered message for
/// malformed specs, and scenario-validation errors for well-formed specs
/// describing impossible scenarios.
///
/// # Examples
///
/// ```
/// let spec = r#"
/// name = "demo"
/// description = "one flash crowd"
/// slots = 10
/// peers = 5
///
/// [[event]]
/// at_slot = 4
/// kind = "flash_crowd"
/// peers = 20
/// "#;
/// let s = p2p_scenario::parse_scenario(spec).unwrap();
/// assert_eq!(s.name, "demo");
/// assert_eq!(s.events.len(), 1);
/// ```
pub fn parse_scenario(text: &str) -> Result<Scenario> {
    let (top, event_tables) = tokenize(text)?;
    if let Some(b) = top.get("include") {
        return Err(err(
            b.line,
            "`include` needs a base directory to resolve against — \
             load this spec with `parse_scenario_file`",
        ));
    }
    scenario_from_tables(top, event_tables)
}

/// How deep `include` chains may nest before the loader assumes a mistake.
const MAX_INCLUDE_DEPTH: usize = 8;

/// Loads a spec file, resolving `include = "base.toml"` chains relative to
/// each including file's directory. The including file's top-level keys
/// override the base's key-by-key; its `[[event]]` tables are appended
/// after the base's (events never override each other — a derived scenario
/// adds to the timeline, it does not edit it).
///
/// # Errors
///
/// Everything [`parse_scenario`] rejects, plus unreadable files, include
/// cycles, and chains deeper than eight files.
///
/// # Examples
///
/// ```no_run
/// let s = p2p_scenario::parse_scenario_file("scenarios/flash_crowd_net.toml").unwrap();
/// assert!(!s.name.is_empty());
/// ```
pub fn parse_scenario_file(path: impl AsRef<std::path::Path>) -> Result<Scenario> {
    let mut visited = Vec::new();
    let (top, events) = load_tables(path.as_ref(), &mut visited)?;
    scenario_from_tables(top, events)
}

/// Recursive worker for [`parse_scenario_file`]: returns the file's tables
/// with any `include` chain already merged in (and the `include` binding
/// consumed). `visited` doubles as the cycle detector and depth meter.
fn load_tables(
    path: &std::path::Path,
    visited: &mut Vec<std::path::PathBuf>,
) -> Result<(Table, Vec<Table>)> {
    let file_err = |reason: String| P2pError::invalid_config("scenario_spec", reason);
    let canonical = path.canonicalize().unwrap_or_else(|_| path.to_path_buf());
    if visited.contains(&canonical) {
        return Err(file_err(format!("include cycle through `{}`", path.display())));
    }
    if visited.len() >= MAX_INCLUDE_DEPTH {
        return Err(file_err(format!(
            "include chain deeper than {MAX_INCLUDE_DEPTH} files at `{}`",
            path.display()
        )));
    }
    visited.push(canonical);
    let text = std::fs::read_to_string(path)
        .map_err(|e| file_err(format!("cannot read `{}`: {e}", path.display())))?;
    let (mut top, mut events) =
        tokenize(&text).map_err(|e| file_err(format!("{}: {e}", path.display())))?;
    let include = top.str("include").map_err(|e| file_err(format!("{}: {e}", path.display())))?;
    if let Some(rel) = include {
        top.bindings.retain(|b| b.key != "include");
        let base_path = path.parent().unwrap_or(std::path::Path::new(".")).join(rel);
        let (base_top, base_events) = load_tables(&base_path, visited)?;
        // Base first, then this file's overrides win key-by-key.
        let mut merged = base_top;
        for b in top.bindings {
            match merged.bindings.iter().position(|m| m.key == b.key) {
                Some(i) => merged.bindings[i] = b,
                None => merged.bindings.push(b),
            }
        }
        top = merged;
        let mut all_events = base_events;
        all_events.append(&mut events);
        events = all_events;
    }
    Ok((top, events))
}

/// Builds and validates a [`Scenario`] from tokenized (and possibly
/// include-merged) tables.
fn scenario_from_tables(top: Table, event_tables: Vec<Table>) -> Result<Scenario> {
    top.check_known(
        &[
            "name",
            "description",
            "profile",
            "seed",
            "slots",
            "peers",
            "churn",
            "arrival_rate",
            "seeds_per_video",
            "slot_build",
            "shards",
            "net",
        ],
        "scenario",
    )?;
    let mut scenario =
        Scenario::new(top.require_str("name")?, top.str("description")?.unwrap_or_default());
    if let Some(profile) = top.str("profile")? {
        scenario.profile = Profile::from_name(&profile)?;
    }
    if let Some(seed) = top.u64("seed")? {
        scenario.seed = seed;
    }
    if let Some(slots) = top.u64("slots")? {
        scenario.slots = slots;
    }
    if let Some(peers) = top.u64("peers")? {
        scenario.initial_peers = peers as usize;
    }
    if let Some(churn) = top.bool("churn")? {
        scenario.churn = churn;
    }
    scenario.arrival_rate = top.f64("arrival_rate")?;
    scenario.seeds_per_video = top.u32("seeds_per_video")?;
    if let Some(mode) = top.str("slot_build")? {
        scenario.slot_build = p2p_streaming::SlotBuild::from_name(&mode)?;
    }
    if let Some(net) = top.str("net")? {
        scenario.net = net;
    }
    // `shards` accepts both spellings: `shards = "auto"` and `shards = 8`.
    match top.get("shards") {
        None => {}
        Some(Binding { value: Value::Int(_), .. }) => {
            let n = top.u64("shards")?.expect("binding exists");
            scenario.shards = p2p_streaming::ShardCount::from_name(&n.to_string())?;
        }
        Some(_) => {
            let s = top.str("shards")?.expect("binding exists");
            scenario.shards = p2p_streaming::ShardCount::from_name(&s)?;
        }
    }
    for table in &event_tables {
        scenario.events.push(parse_event(table)?);
    }
    scenario.validate()?;
    Ok(scenario)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_spec_round_trips() {
        let spec = r#"
# demo scenario
name = "demo"                 # identifier
description = "all the knobs"
profile = "small"
seed = 9
slots = 30
peers = 8
churn = true
arrival_rate = 2.5

[[event]]
at_slot = 3
kind = "flash_crowd"
peers = 15
video = 1
isp = 0

[[event]]
at_slot = 5
kind = "isp_outage"
isp = 1
factor = 25.0

[[event]]
at_slot = 9
kind = "isp_recovery"
isp = 1

[[event]]
at_slot = 11
kind = "seed_failure"
count = 2

[[event]]
at_slot = 13
kind = "late_seed"
video = 0
isp = 1
count = 2

[[event]]
at_slot = 15
kind = "churn_burst"
rate = 10

[[event]]
at_slot = 17
kind = "popularity_shift"
alpha = 3.0
q = 0.5

[[event]]
at_slot = 19
kind = "isp_throttle"
isp = 0
factor = 0.3

[[event]]
at_slot = 21
kind = "link_reprice"
factor = 2.0
"#;
        let s = parse_scenario(spec).unwrap();
        assert_eq!(s.name, "demo");
        assert_eq!(s.seed, 9);
        assert_eq!(s.slots, 30);
        assert_eq!(s.initial_peers, 8);
        assert!(s.churn);
        assert_eq!(s.arrival_rate, Some(2.5));
        assert_eq!(s.events.len(), 9);
        assert_eq!(
            s.events[0].event,
            ScenarioEvent::FlashCrowd {
                peers: 15,
                video: Some(VideoId::new(1)),
                isp: Some(IspId::new(0)),
            }
        );
        assert_eq!(s.events[5].event, ScenarioEvent::ChurnBurst { rate: 10.0 });
    }

    #[test]
    fn defaults_fill_optional_top_keys() {
        let s = parse_scenario("name = \"bare\"\n").unwrap();
        assert_eq!(s.profile, Profile::Small);
        assert_eq!(s.seed, 42);
        assert!(!s.churn);
        assert_eq!(s.slot_build, p2p_streaming::SlotBuild::Cold);
        assert!(s.events.is_empty());
    }

    #[test]
    fn shards_key_parses_both_spellings_and_rejects_zero() {
        let s = parse_scenario("name = \"x\"\nshards = \"auto\"\n").unwrap();
        assert_eq!(s.shards, p2p_streaming::ShardCount::Auto);
        let s = parse_scenario("name = \"x\"\nshards = 8\n").unwrap();
        assert_eq!(s.shards, p2p_streaming::ShardCount::Fixed(8));
        let s = parse_scenario("name = \"x\"\nshards = \"4\"\n").unwrap();
        assert_eq!(s.shards, p2p_streaming::ShardCount::Fixed(4));
        let s = parse_scenario("name = \"x\"\n").unwrap();
        assert_eq!(s.shards, p2p_streaming::ShardCount::Auto);
        expect_err("name = \"x\"\nshards = 0\n", "positive");
        expect_err("name = \"x\"\nshards = \"lots\"\n", "positive");
    }

    #[test]
    fn slot_build_key_parses_and_rejects_unknown_modes() {
        let s = parse_scenario("name = \"x\"\nslot_build = \"incremental\"\n").unwrap();
        assert_eq!(s.slot_build, p2p_streaming::SlotBuild::Incremental);
        let s = parse_scenario("name = \"x\"\nslot_build = \"cold\"\n").unwrap();
        assert_eq!(s.slot_build, p2p_streaming::SlotBuild::Cold);
        expect_err("name = \"x\"\nslot_build = \"lukewarm\"\n", "unknown mode");
    }

    fn expect_err(spec: &str, needle: &str) {
        let e = parse_scenario(spec).unwrap_err().to_string();
        assert!(e.contains(needle), "error `{e}` should mention `{needle}`");
    }

    #[test]
    fn malformed_specs_report_line_numbers() {
        expect_err("name = \"x\"\nslots == 3\n", "line 2");
        expect_err("name = \"x\"\nwat\n", "key = value");
        expect_err("name = \"x\"\n[section]\n", "unsupported section");
        expect_err("name = \"x\"\nslots = \"ten\"\n", "integer");
        expect_err("name = \"x\"\nslots = -4\n", "non-negative");
        expect_err("name = \"x\"\nchurn = 3\n", "true/false");
        expect_err("name = \"x\"\nname = \"y\"\n", "duplicate");
        expect_err("name = \"x\"\nbogus_key = 1\n", "unknown scenario key");
        expect_err("name = \"x\"\ndescription = \"unterminated\n", "unterminated");
        expect_err("slots = 5\n", "missing required key `name`");
        expect_err("name = \"x\"\nprofile = \"huge\"\n", "unknown profile");
    }

    #[test]
    fn malformed_events_are_rejected() {
        let base = "name = \"x\"\nslots = 20\n\n[[event]]\n";
        expect_err(&format!("{base}at_slot = 1\nkind = \"warp_drive\"\n"), "unknown event kind");
        expect_err(&format!("{base}kind = \"link_reprice\"\nfactor = 2.0\n"), "at_slot");
        expect_err(&format!("{base}at_slot = 1\nkind = \"link_reprice\"\n"), "factor");
        expect_err(
            &format!("{base}at_slot = 1\nkind = \"link_reprice\"\nfactor = 2.0\nisp = 0\n"),
            "unknown link_reprice key",
        );
        expect_err(
            &format!("{base}at_slot = 99\nkind = \"link_reprice\"\nfactor = 2.0\n"),
            "horizon",
        );
        expect_err(&format!("{base}at_slot = 1\nkind = \"late_seed\"\nisp = 0\n"), "video");
        // Ids that would truncate must error, not silently wrap to id 0.
        expect_err(
            &format!("{base}at_slot = 1\nkind = \"isp_recovery\"\nisp = 65536\n"),
            "out of range",
        );
        expect_err(
            &format!("{base}at_slot = 1\nkind = \"seed_failure\"\ncount = 1\nvideo = 4294967296\n"),
            "out of range",
        );
    }

    #[test]
    fn comments_and_quotes_interact_correctly() {
        let s = parse_scenario("name = \"has # hash\" # real comment\n").unwrap();
        assert_eq!(s.name, "has # hash");
    }

    /// A throwaway spec directory for the include tests; removed on drop.
    struct SpecDir(std::path::PathBuf);

    impl SpecDir {
        fn new(label: &str) -> Self {
            let dir = std::env::temp_dir().join(format!("p2p-spec-{label}-{}", std::process::id()));
            std::fs::create_dir_all(&dir).unwrap();
            SpecDir(dir)
        }

        fn write(&self, name: &str, text: &str) -> std::path::PathBuf {
            let path = self.0.join(name);
            std::fs::write(&path, text).unwrap();
            path
        }
    }

    impl Drop for SpecDir {
        fn drop(&mut self) {
            std::fs::remove_dir_all(&self.0).ok();
        }
    }

    #[test]
    fn include_merges_base_with_child_overrides_winning() {
        let dir = SpecDir::new("merge");
        dir.write(
            "base.toml",
            "name = \"base\"\nslots = 30\npeers = 8\nseed = 7\n\n\
             [[event]]\nat_slot = 3\nkind = \"flash_crowd\"\npeers = 15\n",
        );
        let child = dir.write(
            "derived.toml",
            "include = \"base.toml\"\nname = \"derived\"\npeers = 20\n\n\
             [[event]]\nat_slot = 5\nkind = \"link_reprice\"\nfactor = 2.0\n",
        );
        let s = parse_scenario_file(&child).unwrap();
        // Child keys override, untouched base keys survive.
        assert_eq!(s.name, "derived");
        assert_eq!(s.initial_peers, 20);
        assert_eq!(s.slots, 30);
        assert_eq!(s.seed, 7);
        // Events concatenate base-first.
        assert_eq!(s.events.len(), 2);
        assert!(matches!(s.events[0].event, ScenarioEvent::FlashCrowd { .. }));
        assert!(matches!(s.events[1].event, ScenarioEvent::LinkReprice { .. }));
    }

    #[test]
    fn include_chains_nest_and_closest_override_wins() {
        let dir = SpecDir::new("chain");
        dir.write("a.toml", "name = \"a\"\nslots = 10\npeers = 4\nseed = 1\n");
        dir.write("b.toml", "include = \"a.toml\"\nslots = 20\nseed = 2\n");
        let c = dir.write("c.toml", "include = \"b.toml\"\nseed = 3\n");
        let s = parse_scenario_file(&c).unwrap();
        assert_eq!(s.name, "a");
        assert_eq!(s.slots, 20);
        assert_eq!(s.seed, 3);
        assert_eq!(s.initial_peers, 4);
    }

    #[test]
    fn include_rejects_cycles_missing_files_and_string_parsing() {
        let dir = SpecDir::new("bad");
        dir.write("x.toml", "include = \"y.toml\"\nname = \"x\"\n");
        let y = dir.write("y.toml", "include = \"x.toml\"\nname = \"y\"\n");
        let e = parse_scenario_file(&y).unwrap_err().to_string();
        assert!(e.contains("cycle"), "{e}");

        let gone = dir.write("gone.toml", "include = \"nope.toml\"\nname = \"g\"\n");
        let e = parse_scenario_file(&gone).unwrap_err().to_string();
        assert!(e.contains("cannot read"), "{e}");

        // The string-only entry point has no directory to resolve against.
        expect_err("include = \"base.toml\"\nname = \"x\"\n", "parse_scenario_file");
    }

    #[test]
    fn floats_accept_integer_literals() {
        let s = parse_scenario(
            "name = \"x\"\nslots = 9\n\n[[event]]\nat_slot = 1\nkind = \"churn_burst\"\nrate = 5\n",
        )
        .unwrap();
        assert_eq!(s.events[0].event, ScenarioEvent::ChurnBurst { rate: 5.0 });
    }
}
