//! The scenario timeline: a named workload plus events pinned to slots.

use crate::event::ScenarioEvent;
use p2p_streaming::{ShardCount, SlotBuild, SystemConfig};
use p2p_types::{P2pError, Result};

/// Which base system configuration a scenario runs on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Profile {
    /// The fast test-scale system (2 ISPs, 5 short videos, 5 s slots).
    #[default]
    Small,
    /// The paper's Sec. V evaluation system (5 ISPs, 100 videos, 10 s
    /// slots).
    Paper,
}

impl Profile {
    /// The profile's spec-file name.
    pub fn name(self) -> &'static str {
        match self {
            Profile::Small => "small",
            Profile::Paper => "paper",
        }
    }

    /// Parses a spec-file profile name.
    ///
    /// # Errors
    ///
    /// Returns [`P2pError::InvalidConfig`] for unknown names.
    pub fn from_name(name: &str) -> Result<Self> {
        match name {
            "small" => Ok(Profile::Small),
            "paper" => Ok(Profile::Paper),
            other => Err(P2pError::invalid_config("profile", format!("unknown profile `{other}`"))),
        }
    }
}

/// One event pinned to a slot boundary.
#[derive(Debug, Clone, PartialEq)]
pub struct TimedEvent {
    /// The slot at whose *start* the event fires (0-based).
    pub at_slot: u64,
    /// What happens.
    pub event: ScenarioEvent,
}

/// A complete declarative scenario: base workload + event timeline.
///
/// # Examples
///
/// ```
/// use p2p_scenario::{Scenario, ScenarioEvent, TimedEvent};
///
/// let mut s = Scenario::new("surge", "a join surge at slot 5");
/// s.initial_peers = 10;
/// s.slots = 12;
/// s.events.push(TimedEvent {
///     at_slot: 5,
///     event: ScenarioEvent::FlashCrowd { peers: 20, video: None, isp: None },
/// });
/// s.validate().unwrap();
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Scenario {
    /// Scenario name (CLI identifier, report heading).
    pub name: String,
    /// One-line human description.
    pub description: String,
    /// Base system configuration.
    pub profile: Profile,
    /// Master seed; the same seed reproduces the identical run.
    pub seed: u64,
    /// Number of slots to simulate.
    pub slots: u64,
    /// Static watchers admitted over the configured stagger window at the
    /// start of the run.
    pub initial_peers: usize,
    /// Whether Poisson churn is on from slot 0.
    pub churn: bool,
    /// Churn arrival rate override, peers/s (`None` = profile default).
    pub arrival_rate: Option<f64>,
    /// Seed-scarcity override: `Some(k)` provisions `k` seeds per video in
    /// the whole system (round-robin ISPs) instead of the profile's
    /// per-ISP placement — scarce seeds force cross-ISP traffic, which is
    /// where repricing and outage events bite.
    pub seeds_per_video: Option<u32>,
    /// How each slot's welfare instance is constructed (cold rebuild vs the
    /// incremental slot-problem cache; both emit identical instances).
    pub slot_build: SlotBuild,
    /// Shard count for sharded auction schedulers (`auction_sharded`):
    /// `auto` follows the machine's cores, a fixed `N` pins the partition.
    pub shards: ShardCount,
    /// Network-model preset for the virtual-time sim schedulers
    /// (`auction_sim`): `"ideal"`, `"lan"` or `"lossy"` (spec key `net`,
    /// CLI `--net`). The in-process schedulers ignore it.
    pub net: String,
    /// The event timeline (kept in spec order; the runner fires events
    /// stably sorted by slot).
    pub events: Vec<TimedEvent>,
}

impl Scenario {
    /// An empty scenario with library defaults: small profile, seed 42,
    /// 20 slots, no peers, no churn, no events.
    pub fn new(name: impl Into<String>, description: impl Into<String>) -> Self {
        Scenario {
            name: name.into(),
            description: description.into(),
            profile: Profile::Small,
            seed: 42,
            slots: 20,
            initial_peers: 0,
            churn: false,
            arrival_rate: None,
            seeds_per_video: None,
            slot_build: SlotBuild::Cold,
            shards: ShardCount::Auto,
            net: "ideal".into(),
            events: Vec::new(),
        }
    }

    /// Replaces the seed (builder-style).
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Replaces the slot-problem construction mode (builder-style).
    #[must_use]
    pub fn with_slot_build(mut self, mode: SlotBuild) -> Self {
        self.slot_build = mode;
        self
    }

    /// Replaces the sharded-scheduler shard count (builder-style).
    #[must_use]
    pub fn with_shards(mut self, shards: ShardCount) -> Self {
        self.shards = shards;
        self
    }

    /// Replaces the sim-scheduler network preset (builder-style).
    #[must_use]
    pub fn with_net(mut self, net: impl Into<String>) -> Self {
        self.net = net.into();
        self
    }

    /// Compresses the timeline for smoke runs: at most `max_slots` slots,
    /// with every event's slot rescaled proportionally so the dramatic arc
    /// survives.
    #[must_use]
    pub fn quick(mut self, max_slots: u64) -> Self {
        let max_slots = max_slots.max(1);
        if self.slots <= max_slots {
            return self;
        }
        for e in &mut self.events {
            e.at_slot = e.at_slot * max_slots / self.slots;
        }
        self.slots = max_slots;
        self
    }

    /// The system configuration this scenario runs on.
    pub fn base_config(&self) -> SystemConfig {
        let mut config = match self.profile {
            Profile::Small => SystemConfig::small_test(),
            Profile::Paper => SystemConfig::paper(),
        }
        .with_seed(self.seed);
        if let Some(rate) = self.arrival_rate {
            config.arrival_rate = rate;
        }
        if let Some(k) = self.seeds_per_video {
            config.seeds = p2p_streaming::SeedPlacement::PerVideoTotal(k);
        }
        config.slot_build = self.slot_build;
        config.shards = self.shards;
        config
    }

    /// Validates the scenario shape (system-level parameters are validated
    /// again when events are applied).
    ///
    /// # Errors
    ///
    /// Returns [`P2pError::InvalidConfig`] for an empty name, zero slots,
    /// an event beyond the horizon, or an invalid base configuration.
    pub fn validate(&self) -> Result<()> {
        if self.name.is_empty() {
            return Err(P2pError::invalid_config("name", "must not be empty"));
        }
        if self.slots == 0 {
            return Err(P2pError::invalid_config("slots", "must be positive"));
        }
        for e in &self.events {
            if e.at_slot >= self.slots {
                return Err(P2pError::invalid_config(
                    "event",
                    format!(
                        "event at slot {} is beyond the {}-slot horizon",
                        e.at_slot, self.slots
                    ),
                ));
            }
        }
        if p2p_sched::NetworkModel::preset(&self.net).is_none() {
            return Err(P2pError::invalid_config(
                "net",
                format!("unknown network preset `{}` (known: ideal, lan, lossy)", self.net),
            ));
        }
        self.base_config().validate()
    }

    /// A deterministic multi-line description of the timeline (for report
    /// headers).
    pub fn timeline_description(&self) -> String {
        let mut out = String::new();
        let mut events: Vec<&TimedEvent> = self.events.iter().collect();
        events.sort_by_key(|e| e.at_slot);
        for e in events {
            out.push_str(&format!("  slot {:>4}: {}\n", e.at_slot, e.event));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validation_catches_shape_errors() {
        let mut s = Scenario::new("x", "d");
        s.validate().unwrap();
        s.slots = 0;
        assert!(s.validate().is_err());
        s.slots = 10;
        s.events
            .push(TimedEvent { at_slot: 10, event: ScenarioEvent::LinkReprice { factor: 2.0 } });
        assert!(s.validate().is_err());
        s.events[0].at_slot = 9;
        s.validate().unwrap();
        s.name.clear();
        assert!(s.validate().is_err());
    }

    #[test]
    fn quick_rescales_the_timeline() {
        let mut s = Scenario::new("x", "d");
        s.slots = 40;
        s.events
            .push(TimedEvent { at_slot: 20, event: ScenarioEvent::LinkReprice { factor: 2.0 } });
        s.events.push(TimedEvent {
            at_slot: 39,
            event: ScenarioEvent::IspRecovery { isp: p2p_types::IspId::new(0) },
        });
        let q = s.clone().quick(10);
        assert_eq!(q.slots, 10);
        assert_eq!(q.events[0].at_slot, 5);
        assert_eq!(q.events[1].at_slot, 9);
        q.validate().unwrap();
        // Already-short scenarios are untouched.
        assert_eq!(s.clone().quick(100), s);
    }

    #[test]
    fn profiles_round_trip_and_configure() {
        assert_eq!(Profile::from_name("small").unwrap(), Profile::Small);
        assert_eq!(Profile::from_name("paper").unwrap(), Profile::Paper);
        assert!(Profile::from_name("huge").is_err());
        let mut s = Scenario::new("x", "d").with_seed(7);
        s.profile = Profile::Paper;
        s.arrival_rate = Some(3.0);
        let c = s.base_config();
        assert_eq!(c.seed, 7);
        assert_eq!(c.isp_count, 5);
        assert_eq!(c.arrival_rate, 3.0);
        assert_eq!(c.slot_build, SlotBuild::Cold);
    }

    #[test]
    fn slot_build_flows_into_the_base_config() {
        let s = Scenario::new("x", "d").with_slot_build(SlotBuild::Incremental);
        assert_eq!(s.base_config().slot_build, SlotBuild::Incremental);
        s.validate().unwrap();
    }

    #[test]
    fn shards_flow_into_the_base_config() {
        let s = Scenario::new("x", "d").with_shards(ShardCount::Fixed(4));
        assert_eq!(s.base_config().shards, ShardCount::Fixed(4));
        s.validate().unwrap();
        assert_eq!(Scenario::new("x", "d").shards, ShardCount::Auto);
    }

    #[test]
    fn timeline_description_is_sorted() {
        let mut s = Scenario::new("x", "d");
        s.events.push(TimedEvent { at_slot: 9, event: ScenarioEvent::LinkReprice { factor: 2.0 } });
        s.events.push(TimedEvent { at_slot: 1, event: ScenarioEvent::ChurnBurst { rate: 5.0 } });
        let d = s.timeline_description();
        let first = d.find("churn_burst").unwrap();
        let second = d.find("link_reprice").unwrap();
        assert!(first < second);
    }
}
