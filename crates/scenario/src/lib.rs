//! Declarative scenario engine for the ISP-aware P2P emulator.
//!
//! The paper's evaluation (and the `fig*` harness binaries) run *fixed*
//! workloads: a static swarm or steady Poisson churn. This crate turns the
//! emulator into an experimentation platform by making conditions *change
//! mid-run*: a typed [`ScenarioEvent`] timeline — flash crowds, ISP link
//! repricing and outages, seed failures and late seeding, churn-rate
//! bursts, popularity shifts, per-ISP bandwidth throttles — is applied to
//! the streaming [`p2p_streaming::System`] at slot boundaries, where the
//! paper admits topology changes so running auctions are undisturbed.
//!
//! Three layers:
//!
//! * **timeline** — [`Scenario`] + [`TimedEvent`]: a named workload (base
//!   profile, seed, initial peers, churn) plus events pinned to slots;
//! * **spec** — [`parse_scenario`]: a hand-rolled TOML-subset reader, so
//!   scenarios live in data files, not code (see [`spec`] for the format);
//! * **runner** — [`run_scenario`]: sweeps any set of
//!   [`p2p_sched::ChunkScheduler`]s over one scenario and emits
//!   deterministic side-by-side metrics.
//!
//! A library of built-in named scenarios ([`builtin`]) covers the classic
//! stress patterns: `flash_crowd`, `isp_outage`, `prime_time`,
//! `seed_starvation`.
//!
//! # Examples
//!
//! ```
//! use p2p_scenario::{builtin, run_scenario, scheduler_by_name};
//!
//! // How do the auction and the locality baseline weather an ISP outage?
//! let scenario = builtin("isp_outage").unwrap().quick(8);
//! let report = run_scenario(&scenario, vec![
//!     scheduler_by_name("auction", scenario.seed).unwrap(),
//!     scheduler_by_name("locality", scenario.seed).unwrap(),
//! ]).unwrap();
//! assert_eq!(report.runs.len(), 2);
//! print!("{}", report.summary_table());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod event;
pub mod library;
pub mod runner;
pub mod spec;
pub mod timeline;

pub use event::ScenarioEvent;
pub use library::{builtin, builtin_spec, builtins, BUILTIN_NAMES};
pub use runner::{
    event_windows, run_one, run_scenario, run_scenario_probed, scenario_net, scheduler_by_name,
    scheduler_for, scheduler_for_runtime, scheduler_with_net, scheduler_with_runtime,
    scheduler_with_shards, RunSummary, ScenarioReport, ScenarioRun, DEFAULT_SCHEDULER,
    NET_DEFAULT_PEERS, SCHEDULER_NAMES, SIM_FAULTY_EPSILON,
};
pub use spec::{parse_scenario, parse_scenario_file};
pub use timeline::{Profile, Scenario, TimedEvent};
