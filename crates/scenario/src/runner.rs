//! Sweeps schedulers over a scenario and emits side-by-side metrics.

use crate::timeline::{Scenario, TimedEvent};
use p2p_metrics::{RunReport, SlotRecorder};
use p2p_sched::{
    AuctionScheduler, ChunkScheduler, ExactScheduler, FlatAuctionScheduler, GreedyScheduler,
    NetAuctionScheduler, NetworkModel, RandomScheduler, ShardedAuctionScheduler,
    SimAuctionScheduler, SimpleLocalityScheduler, WorkerSpawner,
};
use p2p_streaming::{ClockMode, ShardCount, System, WorkloadTrace};
use p2p_types::{P2pError, Result};
use std::sync::Arc;

/// Scheduler names accepted by [`scheduler_by_name`].
pub const SCHEDULER_NAMES: [&str; 14] = [
    "auction",
    "auction_warm",
    "auction_sharded",
    "auction_sharded_warm",
    "auction_flat",
    "auction_flat_warm",
    "auction_sim",
    "auction_sim_warm",
    "auction_net",
    "auction_net_warm",
    "locality",
    "random",
    "greedy",
    "exact",
];

/// The scheduler the registry hands out for the name `default`: the flat
/// CSR auction engine. Promoted from `auction` on the evidence of
/// `BENCH_simd.json` (ISSUE 6) — the flat engine with the lane bid kernel
/// is the fastest certified execution of the paper's auction at every
/// measured slot size, and its outcomes are bit-identical to the
/// sequential engine's, so the flip changes latency only.
pub const DEFAULT_SCHEDULER: &str = "auction_flat";

/// Minimum bid increment the registry gives the sim schedulers on faulty
/// network presets. Under an ideal network they run the paper's ε = 0 rule
/// (and are bit-identical to the in-process engines); with drops and
/// reordering in play, a positive ε bounds the number of rebids a stale
/// price can provoke, keeping lossy runs finite. The resulting welfare
/// carries the usual Theorem 1 `n·ε` certificate.
pub const SIM_FAULTY_EPSILON: f64 = 0.01;

/// Peer-actor count the registry gives the networked schedulers
/// (`auction_net`): enough to exercise the bidder partition without the
/// per-slot socket setup dominating small scenario runs.
pub const NET_DEFAULT_PEERS: usize = 3;

/// Builds a scheduler from its CLI name (`seed` parameterizes the
/// stochastic ones; the sharded auctions follow the machine's cores —
/// use [`scheduler_with_shards`] or [`scheduler_for`] to pin the count).
///
/// # Errors
///
/// Returns [`P2pError::InvalidConfig`] for unknown names.
pub fn scheduler_by_name(name: &str, seed: u64) -> Result<Box<dyn ChunkScheduler>> {
    scheduler_with_shards(name, seed, ShardCount::Auto)
}

/// [`scheduler_by_name`] with an explicit shard count for the sharded
/// auction schedulers (the sequential schedulers ignore it).
///
/// # Errors
///
/// Returns [`P2pError::InvalidConfig`] for unknown names or an invalid
/// shard count.
pub fn scheduler_with_shards(
    name: &str,
    seed: u64,
    shards: ShardCount,
) -> Result<Box<dyn ChunkScheduler>> {
    scheduler_with_runtime(name, seed, shards, None)
}

/// [`scheduler_with_shards`] with an optional shared worker source for the
/// flat CSR schedulers: pass one `Arc`'d `p2p_runtime::WorkerPool` (it
/// implements [`WorkerSpawner`]) and every flat engine built through this
/// registry leases its slice workers from that pool instead of spawning
/// its own — repeated scenario runs then spawn zero new threads. The other
/// schedulers ignore the spawner.
///
/// # Errors
///
/// Returns [`P2pError::InvalidConfig`] for unknown names or an invalid
/// shard count.
pub fn scheduler_with_runtime(
    name: &str,
    seed: u64,
    shards: ShardCount,
    spawner: Option<Arc<dyn WorkerSpawner>>,
) -> Result<Box<dyn ChunkScheduler>> {
    scheduler_with_net(name, seed, shards, spawner, NetworkModel::ideal())
}

/// [`scheduler_with_runtime`] with an explicit network model for the
/// virtual-time sim schedulers (`auction_sim`): every message between the
/// simulated peers draws its latency and fault fate from the model, seeded
/// per slot from `seed`. The in-process schedulers ignore it.
///
/// # Errors
///
/// Returns [`P2pError::InvalidConfig`] for unknown names or an invalid
/// shard count.
pub fn scheduler_with_net(
    name: &str,
    seed: u64,
    shards: ShardCount,
    spawner: Option<Arc<dyn WorkerSpawner>>,
    net: NetworkModel,
) -> Result<Box<dyn ChunkScheduler>> {
    shards.validate()?;
    // `default` is a stable alias: callers that don't care which execution
    // of the auction they get follow the registry's promotion decisions.
    let name = if name == "default" { DEFAULT_SCHEDULER } else { name };
    let flat = |warm: bool| {
        let mut s = FlatAuctionScheduler::paper(shards);
        if warm {
            s = s.warm_start();
        }
        if let Some(spawner) = spawner.clone() {
            s = s.with_spawner(spawner);
        }
        s
    };
    let sim = |warm: bool| {
        let mut s = if net.is_ideal() {
            SimAuctionScheduler::paper(net.clone())
        } else {
            SimAuctionScheduler::with_epsilon(SIM_FAULTY_EPSILON, net.clone())
        }
        .with_seed(seed);
        if warm {
            s = s.warm_start();
        }
        s
    };
    match name {
        "auction" => Ok(Box::new(AuctionScheduler::paper())),
        "auction_warm" => Ok(Box::new(AuctionScheduler::paper().warm_start())),
        "auction_sharded" => Ok(Box::new(ShardedAuctionScheduler::paper(shards))),
        "auction_sharded_warm" => Ok(Box::new(ShardedAuctionScheduler::paper(shards).warm_start())),
        "auction_flat" => Ok(Box::new(flat(false))),
        "auction_flat_warm" => Ok(Box::new(flat(true))),
        "auction_sim" => Ok(Box::new(sim(false))),
        "auction_sim_warm" => Ok(Box::new(sim(true))),
        "auction_net" => Ok(Box::new(NetAuctionScheduler::paper(NET_DEFAULT_PEERS))),
        "auction_net_warm" => {
            Ok(Box::new(NetAuctionScheduler::paper(NET_DEFAULT_PEERS).warm_start()))
        }
        "locality" | "simple_locality" => Ok(Box::new(SimpleLocalityScheduler::new())),
        "random" => Ok(Box::new(RandomScheduler::new(seed ^ 0x5EED))),
        "greedy" => Ok(Box::new(GreedyScheduler::new())),
        "exact" => Ok(Box::new(ExactScheduler::new())),
        other => Err(P2pError::invalid_config(
            "scheduler",
            format!("unknown scheduler `{other}` (known: {})", SCHEDULER_NAMES.join(", ")),
        )),
    }
}

/// Builds a scheduler configured by a scenario: its seed and its `shards`
/// knob (spec key `shards`, CLI `--shards`).
///
/// # Errors
///
/// Returns [`P2pError::InvalidConfig`] for unknown names.
pub fn scheduler_for(scenario: &Scenario, name: &str) -> Result<Box<dyn ChunkScheduler>> {
    scheduler_for_runtime(scenario, name, None)
}

/// Resolves a scenario's `net` preset name into a [`NetworkModel`].
///
/// # Errors
///
/// Returns [`P2pError::InvalidConfig`] for unknown preset names.
pub fn scenario_net(scenario: &Scenario) -> Result<NetworkModel> {
    NetworkModel::preset(&scenario.net).ok_or_else(|| {
        P2pError::invalid_config(
            "net",
            format!("unknown network preset `{}` (known: ideal, lan, lossy)", scenario.net),
        )
    })
}

/// [`scheduler_for`] with a shared worker source (see
/// [`scheduler_with_runtime`]).
///
/// # Errors
///
/// Returns [`P2pError::InvalidConfig`] for unknown names.
pub fn scheduler_for_runtime(
    scenario: &Scenario,
    name: &str,
    spawner: Option<Arc<dyn WorkerSpawner>>,
) -> Result<Box<dyn ChunkScheduler>> {
    scheduler_with_net(name, scenario.seed, scenario.shards, spawner, scenario_net(scenario)?)
}

/// Whole-run aggregates of one scheduler's pass over a scenario.
#[derive(Debug, Clone, PartialEq)]
pub struct RunSummary {
    /// Scheduler name.
    pub scheduler: String,
    /// Total social welfare over the run.
    pub total_welfare: f64,
    /// Mean welfare per slot.
    pub mean_welfare: f64,
    /// Total scheduled transfers.
    pub transfers: u64,
    /// Share of transfers crossing an ISP boundary.
    pub inter_isp_fraction: f64,
    /// Share of due chunks that missed their deadline.
    pub miss_rate: f64,
    /// Peak simultaneous (non-seed) population.
    pub peak_population: u64,
}

impl RunSummary {
    /// Aggregates a recorder into whole-run numbers.
    pub fn from_recorder(scheduler: impl Into<String>, recorder: &SlotRecorder) -> Self {
        let slots = recorder.slots();
        let total_welfare: f64 = slots.iter().map(|(_, m)| m.welfare).sum();
        let transfers: u64 = slots.iter().map(|(_, m)| m.transfers).sum();
        let inter: u64 = slots.iter().map(|(_, m)| m.inter_isp_transfers).sum();
        let due: u64 = slots.iter().map(|(_, m)| m.due_chunks).sum();
        let missed: u64 = slots.iter().map(|(_, m)| m.missed_chunks).sum();
        RunSummary {
            scheduler: scheduler.into(),
            total_welfare,
            mean_welfare: if slots.is_empty() { 0.0 } else { total_welfare / slots.len() as f64 },
            transfers,
            inter_isp_fraction: if transfers == 0 { 0.0 } else { inter as f64 / transfers as f64 },
            miss_rate: if due == 0 { 0.0 } else { missed as f64 / due as f64 },
            peak_population: slots.iter().map(|(_, m)| m.online_peers).max().unwrap_or(0),
        }
    }

    /// One fixed-width table row (deterministic formatting).
    pub fn table_row(&self) -> String {
        format!(
            "{:<16} {:>12.2} {:>9.2} {:>10} {:>9.2}% {:>9.2}% {:>9}",
            self.scheduler,
            self.total_welfare,
            self.mean_welfare,
            self.transfers,
            100.0 * self.inter_isp_fraction,
            100.0 * self.miss_rate,
            self.peak_population,
        )
    }
}

/// One scheduler's full pass over the scenario.
#[derive(Debug, Clone)]
pub struct ScenarioRun {
    /// Whole-run aggregates.
    pub summary: RunSummary,
    /// Per-slot metrics (for CSV export and plots).
    pub recorder: SlotRecorder,
    /// Structured run report with per-slot phase timings, engine probe
    /// counters and event-window aggregates (`None` unless the run was
    /// probed — see [`run_scenario_probed`]). The deterministic summary
    /// tables never read from it: wall-clock timings live only here.
    pub report: Option<RunReport>,
}

/// The outcome of sweeping several schedulers over one scenario.
#[derive(Debug, Clone)]
pub struct ScenarioReport {
    /// The scenario that ran (post `--quick` compression, if any).
    pub scenario: Scenario,
    /// One run per scheduler, in sweep order.
    pub runs: Vec<ScenarioRun>,
}

impl ScenarioReport {
    /// A deterministic side-by-side comparison: header, timeline, one row
    /// per scheduler. The same seed and scenario produce byte-identical
    /// output across runs.
    pub fn summary_table(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "scenario `{}` — {} (profile {}, seed {}, {} slots, {} initial peers{}{})\n",
            self.scenario.name,
            self.scenario.description,
            self.scenario.profile.name(),
            self.scenario.seed,
            self.scenario.slots,
            self.scenario.initial_peers,
            if self.scenario.churn { ", churn on" } else { "" },
            match self.scenario.slot_build {
                p2p_streaming::SlotBuild::Cold => "",
                p2p_streaming::SlotBuild::Incremental => ", incremental slot-build",
            },
        ));
        out.push_str(&self.scenario.timeline_description());
        out.push_str(&format!(
            "{:<16} {:>12} {:>9} {:>10} {:>10} {:>10} {:>9}\n",
            "scheduler", "welfare", "w/slot", "transfers", "inter-ISP", "miss-rate", "peak-pop",
        ));
        for run in &self.runs {
            out.push_str(&run.summary.table_row());
            out.push('\n');
        }
        out
    }
}

/// Fires every event due at `slot`, in timeline order.
fn apply_due_events(events: &[&TimedEvent], slot: u64, sys: &mut System) -> Result<()> {
    for e in events.iter().filter(|e| e.at_slot == slot) {
        e.event.apply(sys)?;
    }
    Ok(())
}

/// How one run obtains its workload (see [`run_scenario`]'s trace cache).
enum WorkloadHandling<'a> {
    /// Generate live from the scenario seed (the pre-cache behavior).
    Generate,
    /// Generate live and record the admissions into a trace.
    Record,
    /// Replay a previously recorded trace.
    Replay(&'a WorkloadTrace),
}

/// Event-relative aggregation windows over `[0, slots)`: `before` /
/// `during` / `after` the scenario's timeline, or a single `all` window
/// when the scenario has no timed events. Empty ranges (e.g. `before` when
/// the first event fires at slot 0) are dropped by the aggregation.
pub fn event_windows(scenario: &Scenario) -> Vec<(String, u64, u64)> {
    let last_slot = scenario.slots.saturating_sub(1);
    let bounds = scenario
        .events
        .iter()
        .map(|e| e.at_slot.min(last_slot))
        .fold(None, |acc: Option<(u64, u64)>, s| {
            Some(acc.map_or((s, s), |(lo, hi)| (lo.min(s), hi.max(s))))
        });
    match bounds {
        None => vec![("all".into(), 0, last_slot)],
        Some((first, last)) => {
            let mut windows = Vec::new();
            if first > 0 {
                windows.push(("before".into(), 0, first - 1));
            }
            windows.push(("during".into(), first, last));
            if last < last_slot {
                windows.push(("after".into(), last + 1, last_slot));
            }
            windows
        }
    }
}

fn run_one_with(
    scenario: &Scenario,
    scheduler: Box<dyn ChunkScheduler>,
    workload: WorkloadHandling<'_>,
    probes: bool,
) -> Result<(ScenarioRun, Option<WorkloadTrace>)> {
    scenario.validate()?;
    let mut events: Vec<&TimedEvent> = scenario.events.iter().collect();
    events.sort_by_key(|e| e.at_slot);
    let mut config = scenario.base_config();
    // Sim schedulers live on a virtual clock: report their simulated
    // convergence times as the schedule phase instead of sampling
    // `Instant`, so probed reports stay byte-for-byte reproducible.
    if scheduler.name().starts_with("auction_sim") {
        config.clock = ClockMode::Virtual;
    }
    let mut sys = System::new(config, scheduler)?;
    match workload {
        WorkloadHandling::Generate => {}
        WorkloadHandling::Record => sys.record_workload(),
        WorkloadHandling::Replay(trace) => sys.replay_workload(trace.clone()),
    }
    if probes {
        sys.enable_probes();
    }
    let name = sys.scheduler_name();
    if scenario.initial_peers > 0 {
        sys.add_static_peers(scenario.initial_peers)?;
    }
    if scenario.churn {
        sys.enable_poisson_churn()?;
    }
    for slot in 0..scenario.slots {
        apply_due_events(&events, slot, &mut sys)?;
        sys.step_slot()?;
    }
    let trace = sys.take_workload_trace();
    let recorder = sys.recorder().clone();
    let report = sys.take_run_report().map(|mut report| {
        report.scenario = scenario.name.clone();
        let windows = event_windows(scenario);
        let borrowed: Vec<(&str, u64, u64)> =
            windows.iter().map(|(n, lo, hi)| (n.as_str(), *lo, *hi)).collect();
        report.aggregate_windows(&borrowed);
        report
    });
    Ok((
        ScenarioRun { summary: RunSummary::from_recorder(name, &recorder), recorder, report },
        trace,
    ))
}

/// Runs one scheduler over the scenario, generating the workload live from
/// the scenario seed.
///
/// # Errors
///
/// Propagates system-construction, event-application and scheduling
/// errors.
pub fn run_one(scenario: &Scenario, scheduler: Box<dyn ChunkScheduler>) -> Result<ScenarioRun> {
    run_one_with(scenario, scheduler, WorkloadHandling::Generate, false).map(|(run, _)| run)
}

/// Sweeps every scheduler over the scenario, all facing the identical
/// workload and event timeline. The first run records the generated
/// arrival trace and every later run replays it, so the workload is
/// derived once per (scenario, seed) instead of once per scheduler — the
/// summaries are byte-identical to generating it each time (the system RNG
/// only ever feeds workload generation).
///
/// # Errors
///
/// Returns [`P2pError::InvalidConfig`] for an empty scheduler list and
/// propagates per-run errors.
///
/// # Examples
///
/// ```
/// use p2p_scenario::{builtin, run_scenario, scheduler_by_name};
///
/// let scenario = builtin("flash_crowd").unwrap().quick(6);
/// let schedulers = vec![
///     scheduler_by_name("auction", scenario.seed).unwrap(),
///     scheduler_by_name("locality", scenario.seed).unwrap(),
/// ];
/// let report = run_scenario(&scenario, schedulers).unwrap();
/// assert_eq!(report.runs.len(), 2);
/// println!("{}", report.summary_table());
/// ```
pub fn run_scenario(
    scenario: &Scenario,
    schedulers: Vec<Box<dyn ChunkScheduler>>,
) -> Result<ScenarioReport> {
    run_scenario_probed(scenario, schedulers, false)
}

/// [`run_scenario`] with optional run-report collection: with `probes` on,
/// every run carries a [`RunReport`] (phase timings, engine probe counters,
/// HLL uniques, event-window aggregates) in [`ScenarioRun::report`].
/// Probes observe without perturbing — the summary tables and recorders
/// stay byte-identical to an unprobed sweep.
///
/// # Errors
///
/// Returns [`P2pError::InvalidConfig`] for an empty scheduler list and
/// propagates per-run errors.
pub fn run_scenario_probed(
    scenario: &Scenario,
    schedulers: Vec<Box<dyn ChunkScheduler>>,
    probes: bool,
) -> Result<ScenarioReport> {
    if schedulers.is_empty() {
        return Err(P2pError::invalid_config("schedulers", "need at least one"));
    }
    let mut runs = Vec::with_capacity(schedulers.len());
    let mut trace: Option<WorkloadTrace> = None;
    for scheduler in schedulers {
        let handling = match &trace {
            None => WorkloadHandling::Record,
            Some(t) => WorkloadHandling::Replay(t),
        };
        let (run, recorded) = run_one_with(scenario, scheduler, handling, probes)?;
        if trace.is_none() {
            trace = recorded;
        }
        runs.push(run);
    }
    Ok(ScenarioReport { scenario: scenario.clone(), runs })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::library::builtin;

    #[test]
    fn scheduler_registry_resolves_all_names() {
        for name in SCHEDULER_NAMES {
            let s = scheduler_by_name(name, 1).unwrap();
            assert!(!s.name().is_empty());
        }
        assert!(scheduler_by_name("warp", 1).is_err());
    }

    #[test]
    fn default_alias_resolves_to_the_flat_auction() {
        assert_eq!(DEFAULT_SCHEDULER, "auction_flat");
        assert!(SCHEDULER_NAMES.contains(&DEFAULT_SCHEDULER));
        let s = scheduler_by_name("default", 1).unwrap();
        assert_eq!(s.name(), scheduler_by_name(DEFAULT_SCHEDULER, 1).unwrap().name());
    }

    #[test]
    fn scenario_shards_knob_configures_sharded_schedulers() {
        let scenario = Scenario::new("x", "d").with_shards(p2p_streaming::ShardCount::Fixed(2));
        let s = scheduler_for(&scenario, "auction_sharded").unwrap();
        assert_eq!(s.name(), "auction_sharded");
        let s = scheduler_for(&scenario, "auction_sharded_warm").unwrap();
        assert_eq!(s.name(), "auction_sharded_warm");
        // The sequential schedulers accept (and ignore) the knob.
        assert_eq!(scheduler_for(&scenario, "auction").unwrap().name(), "auction");
        assert!(scheduler_with_shards("auction_sharded", 1, p2p_streaming::ShardCount::Fixed(0))
            .is_err());
    }

    #[test]
    fn sharded_auction_sweeps_builtins_alongside_the_sequential_auction() {
        let scenario = builtin("flash_crowd")
            .unwrap()
            .with_shards(p2p_streaming::ShardCount::Fixed(4))
            .quick(6);
        let report = run_scenario(
            &scenario,
            vec![
                scheduler_for(&scenario, "auction").unwrap(),
                scheduler_for(&scenario, "auction_sharded").unwrap(),
            ],
        )
        .unwrap();
        assert_eq!(report.runs[1].summary.scheduler, "auction_sharded");
        for run in &report.runs {
            assert_eq!(run.recorder.len() as u64, scenario.slots);
            assert!(run.summary.transfers > 0);
        }
    }

    /// The flat CSR scheduler is the same auction over a different memory
    /// layout: full scenario sweeps are bit-identical to the nested
    /// schedulers at the same shard count (1 ≙ `auction`, ≥ 2 ≙
    /// `auction_sharded`), warm variants included.
    #[test]
    fn flat_scheduler_sweeps_are_bit_identical_to_nested() {
        for (flat, nested, shards) in [
            ("auction_flat", "auction", ShardCount::Fixed(1)),
            ("auction_flat", "auction_sharded", ShardCount::Fixed(4)),
            ("auction_flat_warm", "auction_warm", ShardCount::Fixed(1)),
            ("auction_flat_warm", "auction_sharded_warm", ShardCount::Fixed(4)),
        ] {
            let scenario = builtin("flash_crowd").unwrap().with_shards(shards).quick(6);
            let report = run_scenario(
                &scenario,
                vec![
                    scheduler_for(&scenario, nested).unwrap(),
                    scheduler_for(&scenario, flat).unwrap(),
                ],
            )
            .unwrap();
            assert_eq!(
                report.runs[0].recorder.slots(),
                report.runs[1].recorder.slots(),
                "{flat} vs {nested} at shards {shards:?}"
            );
        }
    }

    /// The engine-equivalence harness: under a zero-fault network the
    /// virtual-time swarm is the *same auction* as the in-process flat
    /// engine — full scenario sweeps (assignments, welfare, transfers,
    /// misses, per-slot metrics) must be bit-identical at one shard, warm
    /// variants included.
    #[test]
    fn sim_scheduler_sweeps_are_bit_identical_to_flat_at_one_shard() {
        for (sim, flat) in
            [("auction_sim", "auction_flat"), ("auction_sim_warm", "auction_flat_warm")]
        {
            let scenario =
                builtin("flash_crowd").unwrap().with_shards(ShardCount::Fixed(1)).quick(6);
            let report = run_scenario(
                &scenario,
                vec![
                    scheduler_for(&scenario, flat).unwrap(),
                    scheduler_for(&scenario, sim).unwrap(),
                ],
            )
            .unwrap();
            assert_eq!(
                report.runs[0].recorder.slots(),
                report.runs[1].recorder.slots(),
                "{sim} vs {flat}"
            );
        }
    }

    /// The networked runtime is the *same auction* over TCP: full scenario
    /// sweeps are bit-identical to the in-process flat engine at one
    /// shard, warm variants included.
    #[test]
    fn net_scheduler_sweeps_are_bit_identical_to_flat_at_one_shard() {
        for (net, flat) in
            [("auction_net", "auction_flat"), ("auction_net_warm", "auction_flat_warm")]
        {
            let scenario =
                builtin("flash_crowd").unwrap().with_shards(ShardCount::Fixed(1)).quick(4);
            let report = run_scenario(
                &scenario,
                vec![
                    scheduler_for(&scenario, flat).unwrap(),
                    scheduler_for(&scenario, net).unwrap(),
                ],
            )
            .unwrap();
            assert_eq!(
                report.runs[0].recorder.slots(),
                report.runs[1].recorder.slots(),
                "{net} vs {flat}"
            );
        }
    }

    /// Faulty presets run the same scenario to completion and still fill
    /// slots; the summary stays deterministic across repeats.
    #[test]
    fn sim_scheduler_handles_faulty_presets_deterministically() {
        let sweep = || {
            let scenario = builtin("flash_crowd").unwrap().with_net("lossy").quick(6);
            let report =
                run_scenario(&scenario, vec![scheduler_for(&scenario, "auction_sim").unwrap()])
                    .unwrap();
            assert!(report.runs[0].summary.transfers > 0);
            report.summary_table()
        };
        assert_eq!(sweep(), sweep());
    }

    /// Probed sim runs report *virtual* phase timings: byte-identical
    /// RunReport JSON across repeats (wall-clock reports never are).
    #[test]
    fn probed_sim_reports_are_byte_identical_across_repeats() {
        let json = || {
            let scenario = builtin("flash_crowd").unwrap().quick(6);
            let report = run_scenario_probed(
                &scenario,
                vec![scheduler_for(&scenario, "auction_sim").unwrap()],
                true,
            )
            .unwrap();
            let run_report = report.runs[0].report.as_ref().unwrap();
            assert!(
                run_report
                    .slots
                    .iter()
                    .all(|s| s.phases.prepare_s == 0.0 && s.phases.complete_s == 0.0),
                "virtual clock: the wall-clock phases report zero"
            );
            assert!(
                run_report.slots.iter().any(|s| s.phases.schedule_s > 0.0),
                "virtual clock: busy slots carry simulated convergence time"
            );
            run_report.to_json()
        };
        assert_eq!(json(), json());
    }

    #[test]
    fn net_presets_resolve_and_reject_unknown_names() {
        let scenario = builtin("flash_crowd").unwrap();
        assert!(scenario_net(&scenario).unwrap().is_ideal());
        assert!(!scenario_net(&scenario.clone().with_net("lossy")).unwrap().is_ideal());
        let bad = scenario.with_net("subspace");
        assert!(scenario_net(&bad).is_err());
        assert!(bad.validate().is_err());
        assert!(scheduler_for(&bad, "auction_sim").is_err());
    }

    #[test]
    fn runtime_registry_accepts_a_shared_spawner() {
        let scenario = builtin("flash_crowd").unwrap().quick(6);
        let spawner: Arc<dyn WorkerSpawner> = Arc::new(p2p_core::csr::ThreadSpawner);
        let s = scheduler_for_runtime(&scenario, "auction_flat", Some(spawner.clone())).unwrap();
        assert_eq!(s.name(), "auction_flat");
        let s = scheduler_for_runtime(&scenario, "auction_flat_warm", Some(spawner)).unwrap();
        assert_eq!(s.name(), "auction_flat_warm");
        // Non-flat schedulers accept (and ignore) the spawner.
        let s = scheduler_with_runtime("auction", 1, ShardCount::Auto, None).unwrap();
        assert_eq!(s.name(), "auction");
    }

    #[test]
    fn sweep_produces_side_by_side_runs() {
        let scenario = builtin("flash_crowd").unwrap().quick(8);
        let report = run_scenario(
            &scenario,
            vec![
                scheduler_by_name("auction", scenario.seed).unwrap(),
                scheduler_by_name("locality", scenario.seed).unwrap(),
            ],
        )
        .unwrap();
        assert_eq!(report.runs.len(), 2);
        assert_eq!(report.runs[0].summary.scheduler, "auction");
        assert_eq!(report.runs[1].summary.scheduler, "simple_locality");
        for run in &report.runs {
            assert_eq!(run.recorder.len() as u64, scenario.slots);
            assert!(run.summary.transfers > 0, "the crowd must download");
        }
        let table = report.summary_table();
        assert!(table.contains("flash_crowd") && table.contains("auction"));
    }

    #[test]
    fn workload_is_identical_across_schedulers() {
        let scenario = builtin("isp_outage").unwrap().quick(10);
        let report = run_scenario(
            &scenario,
            vec![
                scheduler_by_name("auction", scenario.seed).unwrap(),
                scheduler_by_name("random", scenario.seed).unwrap(),
            ],
        )
        .unwrap();
        // Scheduling must not perturb the shared workload: both runs see
        // the same population trajectory.
        assert_eq!(
            report.runs[0].recorder.population_series().points(),
            report.runs[1].recorder.population_series().points(),
        );
    }

    #[test]
    fn cached_workload_sweep_matches_uncached_runs() {
        // The sweep records the workload once and replays it; per-scheduler
        // results must be byte-identical to deriving the workload live.
        let scenario = builtin("prime_time").unwrap().quick(10);
        let names = ["auction", "locality", "random"];
        let schedulers =
            names.iter().map(|n| scheduler_by_name(n, scenario.seed).unwrap()).collect();
        let report = run_scenario(&scenario, schedulers).unwrap();
        for (run, name) in report.runs.iter().zip(names) {
            let solo = run_one(&scenario, scheduler_by_name(name, scenario.seed).unwrap()).unwrap();
            assert_eq!(run.summary.table_row(), solo.summary.table_row(), "{name}");
            assert_eq!(run.recorder.slots(), solo.recorder.slots(), "{name}");
        }
    }

    #[test]
    fn reports_are_byte_identical_across_repeats() {
        let table = || {
            let scenario = builtin("prime_time").unwrap().quick(10);
            let report = run_scenario(
                &scenario,
                vec![
                    scheduler_by_name("auction", scenario.seed).unwrap(),
                    scheduler_by_name("locality", scenario.seed).unwrap(),
                ],
            )
            .unwrap();
            report.summary_table()
        };
        assert_eq!(table(), table());
    }

    /// Probed sweeps stitch a [`RunReport`] per run — with event-relative
    /// windows — without perturbing the deterministic summary tables.
    #[test]
    fn probed_sweep_attaches_run_reports_with_event_windows() {
        let scenario = builtin("flash_crowd").unwrap().quick(8);
        let sweep = |probes: bool| {
            run_scenario_probed(
                &scenario,
                vec![
                    scheduler_by_name("auction_flat", scenario.seed).unwrap(),
                    scheduler_by_name("locality", scenario.seed).unwrap(),
                ],
                probes,
            )
            .unwrap()
        };
        let bare = sweep(false);
        let probed = sweep(true);
        assert_eq!(bare.summary_table(), probed.summary_table(), "probes must not perturb");
        assert!(bare.runs.iter().all(|r| r.report.is_none()));
        for run in &probed.runs {
            let report = run.report.as_ref().expect("probed runs carry a report");
            assert_eq!(report.scenario, "flash_crowd");
            assert_eq!(report.slots.len() as u64, scenario.slots);
            assert!(!report.windows.is_empty(), "event windows are aggregated");
            let json = report.to_json();
            assert!(json.contains("\"windows\""));
        }
        // The auction run carries engine counters; the baseline does not.
        let auction = probed.runs[0].report.as_ref().unwrap();
        assert!(auction.slots.iter().any(|s| s.engine.is_some()));
        let locality = probed.runs[1].report.as_ref().unwrap();
        assert!(locality.slots.iter().all(|s| s.engine.is_none()));
    }

    #[test]
    fn event_windows_partition_around_the_timeline() {
        let scenario = builtin("flash_crowd").unwrap().quick(8);
        let windows = event_windows(&scenario);
        assert!(windows.iter().any(|(n, _, _)| n == "during"));
        let covered: u64 = windows.iter().map(|(_, lo, hi)| hi - lo + 1).sum();
        assert_eq!(covered, scenario.slots, "windows must partition the run");
        // No events → one `all` window.
        let plain = Scenario::new("x", "d");
        let all = event_windows(&plain);
        assert_eq!(all.len(), 1);
        assert_eq!(all[0].0, "all");
    }

    #[test]
    fn empty_scheduler_list_is_rejected() {
        let scenario = builtin("flash_crowd").unwrap();
        assert!(run_scenario(&scenario, vec![]).is_err());
    }
}
