//! Property tests for mid-run mutation invariants: after ANY sequence of
//! scenario events, chunk-delivery conservation holds, Theorem 1 still
//! certifies each slot's auction outcome, and a fixed seed reproduces
//! identical metrics.

use p2p_core::{verify_optimality, AuctionConfig, SyncAuction};
use p2p_scenario::{run_one, scheduler_by_name, Scenario, ScenarioEvent, TimedEvent};
use p2p_sched::{Schedule, ScheduleStats};
use p2p_streaming::System;
use p2p_types::{IspId, VideoId};
use proptest::prelude::*;

const SLOTS: u64 = 6;

/// One arbitrary event, valid for the small profile (2 ISPs, 5 videos).
fn arb_event() -> impl Strategy<Value = TimedEvent> {
    (0u64..SLOTS, 0u8..9, 1u64..25, 0u16..2, 0u32..5, 0.2f64..5.0).prop_map(
        |(at_slot, kind, n, isp, video, factor)| {
            let isp_id = IspId::new(isp);
            let video_id = VideoId::new(video);
            let event = match kind {
                0 => ScenarioEvent::FlashCrowd {
                    peers: n as usize,
                    video: (video % 2 == 0).then_some(video_id),
                    isp: (isp == 0).then_some(isp_id),
                },
                1 => ScenarioEvent::LinkReprice { factor },
                2 => ScenarioEvent::IspOutage { isp: isp_id, factor: factor * 10.0 },
                3 => ScenarioEvent::IspRecovery { isp: isp_id },
                4 => ScenarioEvent::SeedFailure {
                    count: n as usize,
                    video: (video % 2 == 1).then_some(video_id),
                },
                5 => ScenarioEvent::LateSeed {
                    video: video_id,
                    isp: isp_id,
                    count: 1 + n as usize % 2,
                },
                6 => ScenarioEvent::ChurnBurst { rate: factor * 2.0 },
                7 => ScenarioEvent::PopularityShift { alpha: factor, q: 0.5 },
                _ => ScenarioEvent::IspThrottle { isp: isp_id, factor },
            };
            TimedEvent { at_slot, event }
        },
    )
}

fn arb_scenario() -> impl Strategy<Value = Scenario> {
    (1u64..1_000, 0u64..10, prop::collection::vec(arb_event(), 0..6), any::<bool>()).prop_map(
        |(seed, peers, events, churn)| {
            let mut s = Scenario::new("prop", "generated").with_seed(seed);
            s.slots = SLOTS;
            s.initial_peers = peers as usize;
            s.churn = churn;
            s.events = events;
            s
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Conservation + Theorem 1 hold in every slot, for every event
    /// sequence: the slot's assignment is primal-feasible (each request
    /// served at most once, provider capacities respected — chunk-delivery
    /// conservation), and the primal/dual pair passes the complementary
    /// slackness certificate within the ε-auction's `n·ε` tolerance.
    /// (Streaming slots carry structural ties — many chunks share one
    /// peer-pair cost and valuation — so the ε = 0 certificate of the
    /// tie-free regime does not apply; the ε-auction's does.)
    #[test]
    fn mutated_slots_stay_certified(scenario in arb_scenario()) {
        scenario.validate().unwrap();
        let mut events: Vec<&TimedEvent> = scenario.events.iter().collect();
        events.sort_by_key(|e| e.at_slot);
        let mut sys = System::new(
            scenario.base_config(),
            Box::new(p2p_sched::AuctionScheduler::paper()),
        ).unwrap();
        if scenario.initial_peers > 0 {
            sys.add_static_peers(scenario.initial_peers).unwrap();
        }
        if scenario.churn {
            sys.enable_poisson_churn().unwrap();
        }
        for slot in 0..scenario.slots {
            for e in events.iter().filter(|e| e.at_slot == slot) {
                e.event.apply(&mut sys).unwrap();
            }
            let problem = sys.prepare_slot().unwrap();
            const EPS: f64 = 1e-2;
            let outcome =
                SyncAuction::new(AuctionConfig::with_epsilon(EPS)).run(&problem.instance).unwrap();
            // Chunk-delivery conservation (primal feasibility).
            prop_assert!(outcome.assignment.validate(&problem.instance).is_ok());
            // Theorem 1: the auction outcome is certified optimal within
            // the ε-auction tolerance (tol ≳ n·ε, per the verifier docs).
            let tol = EPS * (problem.instance.request_count() as f64 + 1.0);
            let report = verify_optimality(
                &problem.instance,
                &outcome.assignment,
                &outcome.duals,
                tol,
            );
            prop_assert!(report.is_optimal(), "violations: {:?}", report.violations);
            let assigned = outcome.assignment.assigned_count() as u64;
            let metrics = sys.complete_slot(
                &problem,
                &Schedule { assignment: outcome.assignment, stats: ScheduleStats::default() },
            ).unwrap();
            prop_assert_eq!(metrics.transfers, assigned);
            prop_assert!(metrics.inter_isp_transfers <= metrics.transfers);
            prop_assert!(metrics.missed_chunks <= metrics.due_chunks);
            prop_assert!(metrics.welfare.is_finite());
        }
    }

    /// The same seed + scenario reproduce bit-identical metrics.
    #[test]
    fn fixed_seed_reproduces_identical_metrics(scenario in arb_scenario()) {
        let fingerprint = || {
            let run = run_one(
                &scenario,
                scheduler_by_name("auction", scenario.seed).unwrap(),
            ).unwrap();
            run.recorder
                .slots()
                .iter()
                .map(|(_, m)| (m.welfare.to_bits(), m.transfers, m.missed_chunks, m.online_peers))
                .collect::<Vec<_>>()
        };
        prop_assert_eq!(fingerprint(), fingerprint());
    }

    /// Scenario events are part of the workload, not the scheduler: every
    /// scheduler sees the identical population trajectory.
    #[test]
    fn events_do_not_couple_workload_to_scheduler(scenario in arb_scenario()) {
        let pop = |name: &str| {
            run_one(&scenario, scheduler_by_name(name, scenario.seed).unwrap())
                .unwrap()
                .recorder
                .population_series()
                .points()
                .to_vec()
        };
        prop_assert_eq!(pop("auction"), pop("locality"));
    }
}
