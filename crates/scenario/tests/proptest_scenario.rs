//! Property tests for mid-run mutation invariants: after ANY sequence of
//! scenario events, chunk-delivery conservation holds, Theorem 1 still
//! certifies each slot's auction outcome, and a fixed seed reproduces
//! identical metrics.

use p2p_core::{verify_optimality, AuctionConfig, InstanceDiff, SyncAuction};
use p2p_scenario::{run_one, scheduler_by_name, Scenario, ScenarioEvent, TimedEvent};
use p2p_sched::{Schedule, ScheduleStats};
use p2p_streaming::{SlotBuild, System};
use p2p_types::{IspId, VideoId};
use proptest::prelude::*;

const SLOTS: u64 = 6;

/// One arbitrary event, valid for the small profile (2 ISPs, 5 videos).
fn arb_event() -> impl Strategy<Value = TimedEvent> {
    (0u64..SLOTS, 0u8..9, 1u64..25, 0u16..2, 0u32..5, 0.2f64..5.0).prop_map(
        |(at_slot, kind, n, isp, video, factor)| {
            let isp_id = IspId::new(isp);
            let video_id = VideoId::new(video);
            let event = match kind {
                0 => ScenarioEvent::FlashCrowd {
                    peers: n as usize,
                    video: (video % 2 == 0).then_some(video_id),
                    isp: (isp == 0).then_some(isp_id),
                },
                1 => ScenarioEvent::LinkReprice { factor },
                2 => ScenarioEvent::IspOutage { isp: isp_id, factor: factor * 10.0 },
                3 => ScenarioEvent::IspRecovery { isp: isp_id },
                4 => ScenarioEvent::SeedFailure {
                    count: n as usize,
                    video: (video % 2 == 1).then_some(video_id),
                },
                5 => ScenarioEvent::LateSeed {
                    video: video_id,
                    isp: isp_id,
                    count: 1 + n as usize % 2,
                },
                6 => ScenarioEvent::ChurnBurst { rate: factor * 2.0 },
                7 => ScenarioEvent::PopularityShift { alpha: factor, q: 0.5 },
                // Throttle factors are validated into [0, 1]; map the draw
                // into (0.04, 1.0] so hard outages stay a separate case.
                _ => ScenarioEvent::IspThrottle { isp: isp_id, factor: factor / 5.0 },
            };
            TimedEvent { at_slot, event }
        },
    )
}

fn arb_scenario() -> impl Strategy<Value = Scenario> {
    (1u64..1_000, 0u64..10, prop::collection::vec(arb_event(), 0..6), any::<bool>()).prop_map(
        |(seed, peers, events, churn)| {
            let mut s = Scenario::new("prop", "generated").with_seed(seed);
            s.slots = SLOTS;
            s.initial_peers = peers as usize;
            s.churn = churn;
            s.events = events;
            s
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Conservation + Theorem 1 hold in every slot, for every event
    /// sequence: the slot's assignment is primal-feasible (each request
    /// served at most once, provider capacities respected — chunk-delivery
    /// conservation), and the primal/dual pair passes the complementary
    /// slackness certificate within the ε-auction's `n·ε` tolerance.
    /// (Streaming slots carry structural ties — many chunks share one
    /// peer-pair cost and valuation — so the ε = 0 certificate of the
    /// tie-free regime does not apply; the ε-auction's does.)
    #[test]
    fn mutated_slots_stay_certified(scenario in arb_scenario()) {
        scenario.validate().unwrap();
        let mut events: Vec<&TimedEvent> = scenario.events.iter().collect();
        events.sort_by_key(|e| e.at_slot);
        let mut sys = System::new(
            scenario.base_config(),
            Box::new(p2p_sched::AuctionScheduler::paper()),
        ).unwrap();
        if scenario.initial_peers > 0 {
            sys.add_static_peers(scenario.initial_peers).unwrap();
        }
        if scenario.churn {
            sys.enable_poisson_churn().unwrap();
        }
        for slot in 0..scenario.slots {
            for e in events.iter().filter(|e| e.at_slot == slot) {
                e.event.apply(&mut sys).unwrap();
            }
            let problem = sys.prepare_slot().unwrap();
            const EPS: f64 = 1e-2;
            let outcome =
                SyncAuction::new(AuctionConfig::with_epsilon(EPS)).run(&problem.instance).unwrap();
            // Chunk-delivery conservation (primal feasibility).
            prop_assert!(outcome.assignment.validate(&problem.instance).is_ok());
            // Theorem 1: the auction outcome is certified optimal within
            // the ε-auction tolerance (tol ≳ n·ε, per the verifier docs).
            let tol = EPS * (problem.instance.request_count() as f64 + 1.0);
            let report = verify_optimality(
                &problem.instance,
                &outcome.assignment,
                &outcome.duals,
                tol,
            );
            prop_assert!(report.is_optimal(), "violations: {:?}", report.violations);
            let assigned = outcome.assignment.assigned_count() as u64;
            let metrics = sys.complete_slot(
                &problem,
                &Schedule { assignment: outcome.assignment, stats: ScheduleStats::default() },
            ).unwrap();
            prop_assert_eq!(metrics.transfers, assigned);
            prop_assert!(metrics.inter_isp_transfers <= metrics.transfers);
            prop_assert!(metrics.missed_chunks <= metrics.due_chunks);
            prop_assert!(metrics.welfare.is_finite());
        }
    }

    /// The same seed + scenario reproduce bit-identical metrics.
    #[test]
    fn fixed_seed_reproduces_identical_metrics(scenario in arb_scenario()) {
        let fingerprint = || {
            let run = run_one(
                &scenario,
                scheduler_by_name("auction", scenario.seed).unwrap(),
            ).unwrap();
            run.recorder
                .slots()
                .iter()
                .map(|(_, m)| (m.welfare.to_bits(), m.transfers, m.missed_chunks, m.online_peers))
                .collect::<Vec<_>>()
        };
        prop_assert_eq!(fingerprint(), fingerprint());
    }

    /// Scenario events are part of the workload, not the scheduler: every
    /// scheduler sees the identical population trajectory.
    #[test]
    fn events_do_not_couple_workload_to_scheduler(scenario in arb_scenario()) {
        let pop = |name: &str| {
            run_one(&scenario, scheduler_by_name(name, scenario.seed).unwrap())
                .unwrap()
                .recorder
                .population_series()
                .points()
                .to_vec()
        };
        prop_assert_eq!(pop("auction"), pop("locality"));
    }

    /// `SlotBuild::Incremental` is invisible: after ANY event sequence,
    /// every slot's incrementally-built instance equals the cold rebuild
    /// bit-for-bit, so the auction outcome (assignment welfare and final
    /// prices) is identical too.
    #[test]
    fn incremental_build_matches_cold_after_any_events(scenario in arb_scenario()) {
        let mut events: Vec<&TimedEvent> = scenario.events.iter().collect();
        events.sort_by_key(|e| e.at_slot);
        let make = |mode| {
            let mut s = scenario.clone();
            s.slot_build = mode;
            System::new(s.base_config(), Box::new(p2p_sched::AuctionScheduler::paper()))
        };
        let mut cold_sys = make(SlotBuild::Cold).unwrap();
        let mut inc_sys = make(SlotBuild::Incremental).unwrap();
        for sys in [&mut cold_sys, &mut inc_sys] {
            if scenario.initial_peers > 0 {
                sys.add_static_peers(scenario.initial_peers).unwrap();
            }
            if scenario.churn {
                sys.enable_poisson_churn().unwrap();
            }
        }
        let engine = SyncAuction::new(AuctionConfig::with_epsilon(1e-2));
        for slot in 0..scenario.slots {
            for e in events.iter().filter(|e| e.at_slot == slot) {
                e.event.apply(&mut cold_sys).unwrap();
                e.event.apply(&mut inc_sys).unwrap();
            }
            let cold = cold_sys.prepare_slot().unwrap();
            let incremental = inc_sys.prepare_slot().unwrap();
            prop_assert_eq!(
                &cold, &incremental,
                "slot {} diverged: {:?}", slot,
                InstanceDiff::between(&cold.instance, &incremental.instance)
            );
            let a = engine.run(&cold.instance).unwrap();
            let b = engine.run(&incremental.instance).unwrap();
            prop_assert_eq!(
                a.assignment.welfare(&cold.instance).get().to_bits(),
                b.assignment.welfare(&incremental.instance).get().to_bits()
            );
            prop_assert_eq!(&a.duals.lambda, &b.duals.lambda);
            for (sys, problem, outcome) in
                [(&mut cold_sys, &cold, a), (&mut inc_sys, &incremental, b)]
            {
                sys.complete_slot(
                    problem,
                    &Schedule { assignment: outcome.assignment, stats: ScheduleStats::default() },
                ).unwrap();
            }
        }
    }

    /// Warm-started auctions on the incremental path still satisfy the
    /// Theorem 1 certificate within the ε-auction's `n·ε` tolerance, after
    /// ANY event sequence — carried prices are clamped/repaired, never
    /// trusted.
    #[test]
    fn warm_started_slots_stay_certified(scenario in arb_scenario()) {
        let mut events: Vec<&TimedEvent> = scenario.events.iter().collect();
        events.sort_by_key(|e| e.at_slot);
        let mut s = scenario.clone();
        s.slot_build = SlotBuild::Incremental;
        let mut sys = System::new(
            s.base_config(),
            Box::new(p2p_sched::AuctionScheduler::paper()),
        ).unwrap();
        if s.initial_peers > 0 {
            sys.add_static_peers(s.initial_peers).unwrap();
        }
        if s.churn {
            sys.enable_poisson_churn().unwrap();
        }
        const EPS: f64 = 1e-2;
        let engine = SyncAuction::new(AuctionConfig::with_epsilon(EPS));
        let mut prior: std::collections::HashMap<p2p_types::PeerId, f64> =
            std::collections::HashMap::new();
        for slot in 0..s.slots {
            for e in events.iter().filter(|e| e.at_slot == slot) {
                e.event.apply(&mut sys).unwrap();
            }
            let problem = sys.prepare_slot().unwrap();
            let prices: Vec<f64> = problem
                .instance
                .providers()
                .iter()
                .map(|p| prior.get(&p.peer).copied().unwrap_or(0.0))
                .collect();
            let outcome = engine.run_warm(&problem.instance, &prices).unwrap();
            let tol = EPS * (problem.instance.request_count() as f64 + 1.0);
            let report = verify_optimality(
                &problem.instance,
                &outcome.assignment,
                &outcome.duals,
                tol,
            );
            prop_assert!(report.is_optimal(), "slot {}: {:?}", slot, report.violations);
            prior = problem
                .instance
                .providers()
                .iter()
                .zip(&outcome.duals.lambda)
                .map(|(p, &l)| (p.peer, l))
                .collect();
            sys.complete_slot(
                &problem,
                &Schedule { assignment: outcome.assignment, stats: ScheduleStats::default() },
            ).unwrap();
        }
    }
}
