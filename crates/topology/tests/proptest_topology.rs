//! Property tests for the topology: cost determinism, symmetry, range
//! membership and latency consistency across the whole parameter space.

use p2p_topology::{
    CostDistributions, IspPairCost, LinkCostModel, PairwiseCost, Topology, TopologyConfig,
};
use p2p_types::{IspId, PeerId};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Pairwise costs are symmetric, stable and land in the distribution's
    /// declared support.
    #[test]
    fn pairwise_cost_properties(
        seed in 0u64..10_000,
        a in 0u32..5_000,
        b in 0u32..5_000,
        same_isp in any::<bool>(),
    ) {
        prop_assume!(a != b);
        let m = PairwiseCost::new(CostDistributions::paper_defaults(), seed);
        let (ia, ib) = if same_isp {
            (IspId::new(0), IspId::new(0))
        } else {
            (IspId::new(0), IspId::new(1))
        };
        let w1 = m.link_cost(PeerId::new(a), ia, PeerId::new(b), ib);
        let w2 = m.link_cost(PeerId::new(b), ib, PeerId::new(a), ia);
        prop_assert_eq!(w1, w2, "symmetry");
        let w3 = m.link_cost(PeerId::new(a), ia, PeerId::new(b), ib);
        prop_assert_eq!(w1, w3, "stability");
        if same_isp {
            prop_assert!((0.0..=2.0).contains(&w1.get()));
        } else {
            prop_assert!((1.0..=10.0).contains(&w1.get()));
        }
    }

    /// The per-ISP-pair model is constant within a pair and symmetric.
    #[test]
    fn isp_pair_cost_properties(
        seed in 0u64..10_000,
        isps in 2u16..8,
        p1 in 0u32..100,
        p2 in 0u32..100,
    ) {
        let m = IspPairCost::new(isps, CostDistributions::paper_defaults(), seed).unwrap();
        let ia = IspId::new(0);
        let ib = IspId::new(isps - 1);
        let w1 = m.link_cost(PeerId::new(p1), ia, PeerId::new(p2), ib);
        let w2 = m.link_cost(PeerId::new(p2 + 500), ia, PeerId::new(p1 + 900), ib);
        prop_assert_eq!(w1, w2, "constant within the ISP pair");
        prop_assert_eq!(m.isp_cost(ia, ib), m.isp_cost(ib, ia), "symmetric matrix");
    }

    /// Topology lookups agree with the latency model and the registry.
    #[test]
    fn topology_cost_and_latency_are_consistent(
        seed in 0u64..1_000,
        isps in 1u16..6,
        peers in 2u32..30,
    ) {
        let mut t = Topology::new(TopologyConfig::paper_defaults(isps).with_seed(seed)).unwrap();
        for p in 0..peers {
            t.register_peer(PeerId::new(p), IspId::new((p as u16) % isps)).unwrap();
        }
        for a in 0..peers.min(6) {
            for b in 0..peers.min(6) {
                if a == b { continue; }
                let pa = PeerId::new(a);
                let pb = PeerId::new(b);
                let w = t.cost(pa, pb).unwrap();
                prop_assert!(w.get() >= 0.0);
                let lat = t.one_way_latency(pa, pb).unwrap();
                let expected = t.config().latency.one_way(w);
                prop_assert_eq!(lat, expected);
                let inter = t.is_inter_isp(pa, pb).unwrap();
                prop_assert_eq!(inter, a % u32::from(isps) != b % u32::from(isps));
            }
        }
    }
}
