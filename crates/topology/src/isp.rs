//! Peer → ISP assignment registry.

use p2p_types::{IspId, P2pError, PeerId};
use serde::{Deserialize, Serialize};

/// Tracks which ISP every peer belongs to (the paper's `P_m` sets).
///
/// The registry grows as peers join; lookups are O(1) on the dense peer id.
///
/// # Examples
///
/// ```
/// use p2p_topology::IspRegistry;
/// use p2p_types::{IspId, PeerId};
///
/// let mut reg = IspRegistry::new(5).unwrap();
/// reg.register(PeerId::new(0), IspId::new(2)).unwrap();
/// assert_eq!(reg.isp_of(PeerId::new(0)).unwrap(), IspId::new(2));
/// assert_eq!(reg.peers_in(IspId::new(2)), vec![PeerId::new(0)]);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct IspRegistry {
    isp_count: u16,
    assignment: Vec<Option<IspId>>,
    population: Vec<u32>,
}

impl IspRegistry {
    /// Creates a registry over `isp_count` ISPs.
    ///
    /// # Errors
    ///
    /// Returns [`P2pError::InvalidConfig`] if `isp_count == 0`.
    pub fn new(isp_count: u16) -> Result<Self, P2pError> {
        if isp_count == 0 {
            return Err(P2pError::invalid_config("isp_count", "must be positive"));
        }
        Ok(IspRegistry {
            isp_count,
            assignment: Vec::new(),
            population: vec![0; isp_count as usize],
        })
    }

    /// Number of ISPs (`M`).
    pub fn isp_count(&self) -> u16 {
        self.isp_count
    }

    /// Registers (or re-registers) a peer with an ISP.
    ///
    /// # Errors
    ///
    /// Returns [`P2pError::InvalidConfig`] if the ISP id is out of range.
    pub fn register(&mut self, peer: PeerId, isp: IspId) -> Result<(), P2pError> {
        if isp.get() >= self.isp_count {
            return Err(P2pError::invalid_config("isp", "isp id out of range"));
        }
        let idx = peer.index();
        if idx >= self.assignment.len() {
            self.assignment.resize(idx + 1, None);
        }
        if let Some(old) = self.assignment[idx] {
            self.population[old.index()] -= 1;
        }
        self.assignment[idx] = Some(isp);
        self.population[isp.index()] += 1;
        Ok(())
    }

    /// Removes a peer from the registry (e.g. on departure).
    ///
    /// Removing an unknown peer is a no-op.
    pub fn unregister(&mut self, peer: PeerId) {
        if let Some(slot) = self.assignment.get_mut(peer.index()) {
            if let Some(isp) = slot.take() {
                self.population[isp.index()] -= 1;
            }
        }
    }

    /// Looks up a peer's ISP.
    ///
    /// # Errors
    ///
    /// Returns [`P2pError::UnknownPeer`] if the peer was never registered or
    /// has been unregistered.
    pub fn isp_of(&self, peer: PeerId) -> Result<IspId, P2pError> {
        self.assignment.get(peer.index()).copied().flatten().ok_or(P2pError::UnknownPeer(peer))
    }

    /// Returns `true` if the peer is currently registered.
    pub fn contains(&self, peer: PeerId) -> bool {
        matches!(self.assignment.get(peer.index()), Some(Some(_)))
    }

    /// Number of registered peers in one ISP.
    pub fn population_of(&self, isp: IspId) -> u32 {
        self.population.get(isp.index()).copied().unwrap_or(0)
    }

    /// Total number of registered peers.
    pub fn total_population(&self) -> u32 {
        self.population.iter().sum()
    }

    /// All peers currently registered in `isp` (O(total peers)).
    pub fn peers_in(&self, isp: IspId) -> Vec<PeerId> {
        self.assignment
            .iter()
            .enumerate()
            .filter(|(_, a)| **a == Some(isp))
            .map(|(i, _)| PeerId::new(i as u32))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_lookup_unregister() {
        let mut reg = IspRegistry::new(3).unwrap();
        reg.register(PeerId::new(5), IspId::new(1)).unwrap();
        assert!(reg.contains(PeerId::new(5)));
        assert_eq!(reg.isp_of(PeerId::new(5)).unwrap(), IspId::new(1));
        assert_eq!(reg.population_of(IspId::new(1)), 1);
        reg.unregister(PeerId::new(5));
        assert!(!reg.contains(PeerId::new(5)));
        assert_eq!(reg.population_of(IspId::new(1)), 0);
        assert!(reg.isp_of(PeerId::new(5)).is_err());
    }

    #[test]
    fn reregistration_moves_population() {
        let mut reg = IspRegistry::new(2).unwrap();
        reg.register(PeerId::new(0), IspId::new(0)).unwrap();
        reg.register(PeerId::new(0), IspId::new(1)).unwrap();
        assert_eq!(reg.population_of(IspId::new(0)), 0);
        assert_eq!(reg.population_of(IspId::new(1)), 1);
        assert_eq!(reg.total_population(), 1);
    }

    #[test]
    fn out_of_range_isp_rejected() {
        let mut reg = IspRegistry::new(2).unwrap();
        assert!(reg.register(PeerId::new(0), IspId::new(2)).is_err());
        assert!(IspRegistry::new(0).is_err());
    }

    #[test]
    fn unknown_peer_errors() {
        let reg = IspRegistry::new(2).unwrap();
        assert_eq!(reg.isp_of(PeerId::new(9)).unwrap_err(), P2pError::UnknownPeer(PeerId::new(9)));
    }

    #[test]
    fn peers_in_lists_members() {
        let mut reg = IspRegistry::new(2).unwrap();
        for i in 0..6 {
            reg.register(PeerId::new(i), IspId::new((i % 2) as u16)).unwrap();
        }
        assert_eq!(reg.peers_in(IspId::new(0)).len(), 3);
        assert_eq!(reg.peers_in(IspId::new(1)).len(), 3);
        assert_eq!(reg.total_population(), 6);
    }

    #[test]
    fn unregister_unknown_is_noop() {
        let mut reg = IspRegistry::new(1).unwrap();
        reg.unregister(PeerId::new(42));
        assert_eq!(reg.total_population(), 0);
    }
}
