//! Link-cost models for `w_{u→d}`.

use crate::splitmix::SplitMix64;
use p2p_types::{Cost, IspId, P2pError, PeerId};
use p2p_workload::TruncatedNormal;
use serde::{Deserialize, Serialize};

/// The pair of truncated-normal distributions the paper samples link costs
/// from.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CostDistributions {
    /// Cost law for links crossing ISP boundaries (paper: `N(5,1)` on `[1,10]`).
    pub inter: TruncatedNormal,
    /// Cost law for links within one ISP (paper: `N(1,1)` on `[0,2]`).
    pub intra: TruncatedNormal,
}

impl CostDistributions {
    /// The paper's Sec. V parameterisation.
    pub fn paper_defaults() -> Self {
        CostDistributions {
            inter: TruncatedNormal::paper_inter_isp(),
            intra: TruncatedNormal::paper_intra_isp(),
        }
    }

    /// A parameterisation with a configurable inter-ISP mean, used by the
    /// EXP-A3 ablation (how strongly the auction localizes traffic as the
    /// inter/intra cost gap widens).
    ///
    /// # Errors
    ///
    /// Returns [`P2pError::InvalidConfig`] if the resulting distribution is
    /// invalid (e.g. non-positive mean window).
    pub fn with_inter_mean(mean: f64) -> Result<Self, P2pError> {
        Ok(CostDistributions {
            inter: TruncatedNormal::new(mean, 1.0, (mean - 4.0).max(0.1), mean + 5.0)?,
            intra: TruncatedNormal::paper_intra_isp(),
        })
    }
}

/// Abstraction over the network cost `w_{u→d}` between two peers with known
/// ISP membership.
///
/// Implementations must be deterministic: the same `(from, to)` pair always
/// yields the same cost, so that repeated queries within and across time
/// slots see a stable network.
pub trait LinkCostModel: Send + Sync + std::fmt::Debug {
    /// The cost of sending one chunk from `from` (in `from_isp`) to `to`
    /// (in `to_isp`).
    fn link_cost(&self, from: PeerId, from_isp: IspId, to: PeerId, to_isp: IspId) -> Cost;
}

/// Per-peer-pair cost model: each unordered peer pair draws its own cost
/// from the inter- or intra-ISP distribution.
///
/// The draw is computed on the fly from `hash(seed, {u,d})`, so the model is
/// stateless, O(1)-memory and deterministic — the same pair always sees the
/// same link cost, and `w_{u→d} = w_{d→u}` (latency-like symmetry).
///
/// # Examples
///
/// ```
/// use p2p_topology::{PairwiseCost, CostDistributions, LinkCostModel};
/// use p2p_types::{PeerId, IspId};
///
/// let m = PairwiseCost::new(CostDistributions::paper_defaults(), 42);
/// let a = m.link_cost(PeerId::new(1), IspId::new(0), PeerId::new(2), IspId::new(0));
/// let b = m.link_cost(PeerId::new(2), IspId::new(0), PeerId::new(1), IspId::new(0));
/// assert_eq!(a, b); // symmetric and stable
/// assert!((0.0..=2.0).contains(&a.get())); // intra-ISP range
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PairwiseCost {
    dists: CostDistributions,
    seed: u64,
}

impl PairwiseCost {
    /// Creates a pairwise model with the given distributions and seed.
    pub fn new(dists: CostDistributions, seed: u64) -> Self {
        PairwiseCost { dists, seed }
    }

    /// The distributions in use.
    pub fn distributions(&self) -> &CostDistributions {
        &self.dists
    }
}

impl LinkCostModel for PairwiseCost {
    fn link_cost(&self, from: PeerId, from_isp: IspId, to: PeerId, to_isp: IspId) -> Cost {
        let (a, b) = if from.get() <= to.get() { (from, to) } else { (to, from) };
        let mut rng = SplitMix64::from_words(&[self.seed, u64::from(a.get()), u64::from(b.get())]);
        let dist = if from_isp == to_isp { &self.dists.intra } else { &self.dists.inter };
        Cost::new(dist.sample(&mut rng))
    }
}

/// Per-ISP-pair cost model: one draw per ordered ISP pair, shared by every
/// peer pair across those ISPs (the coarser reading of the paper's
/// "different values between peers in different pairs of ISPs").
///
/// # Examples
///
/// ```
/// use p2p_topology::{IspPairCost, CostDistributions, LinkCostModel};
/// use p2p_types::{PeerId, IspId};
///
/// let m = IspPairCost::new(3, CostDistributions::paper_defaults(), 7).unwrap();
/// let w1 = m.link_cost(PeerId::new(0), IspId::new(0), PeerId::new(1), IspId::new(2));
/// let w2 = m.link_cost(PeerId::new(5), IspId::new(0), PeerId::new(9), IspId::new(2));
/// assert_eq!(w1, w2); // same ISP pair ⇒ same cost
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct IspPairCost {
    isp_count: u16,
    matrix: Vec<f64>,
}

impl IspPairCost {
    /// Samples the `isp_count × isp_count` cost matrix. Diagonal entries
    /// come from the intra distribution, off-diagonal from the inter
    /// distribution; the matrix is made symmetric.
    ///
    /// # Errors
    ///
    /// Returns [`P2pError::InvalidConfig`] if `isp_count == 0`.
    pub fn new(isp_count: u16, dists: CostDistributions, seed: u64) -> Result<Self, P2pError> {
        if isp_count == 0 {
            return Err(P2pError::invalid_config("isp_count", "must be positive"));
        }
        let n = isp_count as usize;
        let mut matrix = vec![0.0; n * n];
        let mut rng = SplitMix64::from_words(&[seed, 0xC057]);
        for i in 0..n {
            for j in i..n {
                let w = if i == j {
                    dists.intra.sample(&mut rng)
                } else {
                    dists.inter.sample(&mut rng)
                };
                matrix[i * n + j] = w;
                matrix[j * n + i] = w;
            }
        }
        Ok(IspPairCost { isp_count, matrix })
    }

    /// The cost between a pair of ISPs.
    ///
    /// # Panics
    ///
    /// Panics if either ISP id is out of range.
    pub fn isp_cost(&self, a: IspId, b: IspId) -> Cost {
        let n = self.isp_count as usize;
        assert!(a.index() < n && b.index() < n, "isp id out of range");
        Cost::new(self.matrix[a.index() * n + b.index()])
    }
}

impl LinkCostModel for IspPairCost {
    fn link_cost(&self, _from: PeerId, from_isp: IspId, _to: PeerId, to_isp: IspId) -> Cost {
        self.isp_cost(from_isp, to_isp)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pairwise_costs_fall_in_declared_ranges() {
        let m = PairwiseCost::new(CostDistributions::paper_defaults(), 1);
        for i in 0..200u32 {
            let intra =
                m.link_cost(PeerId::new(i), IspId::new(0), PeerId::new(i + 1), IspId::new(0));
            assert!((0.0..=2.0).contains(&intra.get()), "{intra}");
            let inter =
                m.link_cost(PeerId::new(i), IspId::new(0), PeerId::new(i + 1), IspId::new(1));
            assert!((1.0..=10.0).contains(&inter.get()), "{inter}");
        }
    }

    #[test]
    fn pairwise_is_symmetric_and_stable() {
        let m = PairwiseCost::new(CostDistributions::paper_defaults(), 99);
        let a = m.link_cost(PeerId::new(3), IspId::new(1), PeerId::new(8), IspId::new(4));
        let b = m.link_cost(PeerId::new(8), IspId::new(4), PeerId::new(3), IspId::new(1));
        assert_eq!(a, b);
        let again = m.link_cost(PeerId::new(3), IspId::new(1), PeerId::new(8), IspId::new(4));
        assert_eq!(a, again);
    }

    #[test]
    fn pairwise_seed_changes_costs() {
        let m1 = PairwiseCost::new(CostDistributions::paper_defaults(), 1);
        let m2 = PairwiseCost::new(CostDistributions::paper_defaults(), 2);
        let p = |m: &PairwiseCost| {
            m.link_cost(PeerId::new(0), IspId::new(0), PeerId::new(1), IspId::new(1))
        };
        assert_ne!(p(&m1), p(&m2));
    }

    #[test]
    fn inter_costs_exceed_intra_on_average() {
        let m = PairwiseCost::new(CostDistributions::paper_defaults(), 5);
        let n = 2000u32;
        let mut intra_sum = 0.0;
        let mut inter_sum = 0.0;
        for i in 0..n {
            intra_sum += m
                .link_cost(PeerId::new(2 * i), IspId::new(0), PeerId::new(2 * i + 1), IspId::new(0))
                .get();
            inter_sum += m
                .link_cost(PeerId::new(2 * i), IspId::new(0), PeerId::new(2 * i + 1), IspId::new(1))
                .get();
        }
        assert!(inter_sum / n as f64 > 3.0 + intra_sum / n as f64);
    }

    #[test]
    fn isp_pair_model_is_constant_within_pair() {
        let m = IspPairCost::new(4, CostDistributions::paper_defaults(), 3).unwrap();
        let w1 = m.link_cost(PeerId::new(0), IspId::new(1), PeerId::new(1), IspId::new(2));
        let w2 = m.link_cost(PeerId::new(7), IspId::new(1), PeerId::new(9), IspId::new(2));
        assert_eq!(w1, w2);
        assert_eq!(
            m.isp_cost(IspId::new(1), IspId::new(2)),
            m.isp_cost(IspId::new(2), IspId::new(1))
        );
    }

    #[test]
    fn isp_pair_validation() {
        assert!(IspPairCost::new(0, CostDistributions::paper_defaults(), 0).is_err());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn isp_pair_out_of_range_panics() {
        let m = IspPairCost::new(2, CostDistributions::paper_defaults(), 0).unwrap();
        let _ = m.isp_cost(IspId::new(0), IspId::new(5));
    }

    #[test]
    fn ablation_distributions_construct() {
        let d = CostDistributions::with_inter_mean(8.0).unwrap();
        assert_eq!(d.inter.mean(), 8.0);
        assert!(CostDistributions::with_inter_mean(2.0).is_ok());
    }
}
