//! Mapping from abstract cost units to simulated message latency.

use p2p_types::{Cost, P2pError, SimDuration};
use serde::{Deserialize, Serialize};

/// Converts link costs (the paper uses "network latency as the network
/// cost") into one-way message latencies for the in-slot auction emulation.
///
/// `latency = base + ms_per_cost_unit × cost`. With the default scale of
/// 100 ms per cost unit, an intra-ISP link (cost ≈ 1) has ~105 ms one-way
/// latency and an inter-ISP link (cost ≈ 5) ~505 ms, which reproduces the
/// paper's ~5-second within-slot convergence of the bandwidth price
/// (Fig. 2): a few dozen bid/price round trips fit in half a slot.
///
/// # Examples
///
/// ```
/// use p2p_topology::LatencyModel;
/// use p2p_types::Cost;
///
/// let lat = LatencyModel::paper_defaults();
/// let d = lat.one_way(Cost::new(5.0));
/// assert!((d.as_secs_f64() - 0.505).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LatencyModel {
    base_ms: f64,
    ms_per_cost_unit: f64,
}

impl LatencyModel {
    /// 5 ms base plus 100 ms per cost unit.
    pub fn paper_defaults() -> Self {
        LatencyModel { base_ms: 5.0, ms_per_cost_unit: 100.0 }
    }

    /// Creates a latency model.
    ///
    /// # Errors
    ///
    /// Returns [`P2pError::InvalidConfig`] if either parameter is negative
    /// or non-finite.
    pub fn new(base_ms: f64, ms_per_cost_unit: f64) -> Result<Self, P2pError> {
        if !base_ms.is_finite() || base_ms < 0.0 {
            return Err(P2pError::invalid_config("base_ms", "must be finite and >= 0"));
        }
        if !ms_per_cost_unit.is_finite() || ms_per_cost_unit < 0.0 {
            return Err(P2pError::invalid_config("ms_per_cost_unit", "must be finite and >= 0"));
        }
        Ok(LatencyModel { base_ms, ms_per_cost_unit })
    }

    /// Fixed per-message latency component in milliseconds.
    pub fn base_ms(&self) -> f64 {
        self.base_ms
    }

    /// Per-cost-unit latency component in milliseconds.
    pub fn ms_per_cost_unit(&self) -> f64 {
        self.ms_per_cost_unit
    }

    /// One-way latency of a message across a link of the given cost.
    pub fn one_way(&self, cost: Cost) -> SimDuration {
        SimDuration::from_secs_f64((self.base_ms + self.ms_per_cost_unit * cost.get()) / 1e3)
    }

    /// Round-trip latency (twice one-way).
    pub fn round_trip(&self, cost: Cost) -> SimDuration {
        self.one_way(cost) * 2
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn one_way_is_affine_in_cost() {
        let lat = LatencyModel::new(10.0, 50.0).unwrap();
        assert_eq!(lat.one_way(Cost::new(0.0)).as_micros(), 10_000);
        assert_eq!(lat.one_way(Cost::new(2.0)).as_micros(), 110_000);
    }

    #[test]
    fn round_trip_doubles() {
        let lat = LatencyModel::paper_defaults();
        let c = Cost::new(1.0);
        assert_eq!(lat.round_trip(c).as_micros(), 2 * lat.one_way(c).as_micros());
    }

    #[test]
    fn validation() {
        assert!(LatencyModel::new(-1.0, 0.0).is_err());
        assert!(LatencyModel::new(0.0, -1.0).is_err());
        assert!(LatencyModel::new(f64::NAN, 0.0).is_err());
        assert!(LatencyModel::new(0.0, 0.0).is_ok());
    }

    #[test]
    fn accessors() {
        let lat = LatencyModel::paper_defaults();
        assert_eq!(lat.base_ms(), 5.0);
        assert_eq!(lat.ms_per_cost_unit(), 100.0);
    }
}
