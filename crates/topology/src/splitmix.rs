//! SplitMix64: a tiny, fast, deterministic RNG used to derive per-link
//! randomness from `(seed, u, d)` without storing an O(N²) cost table.
//!
//! SplitMix64 is the standard seeding generator from Steele et al.,
//! "Fast Splittable Pseudorandom Number Generators" (OOPSLA'14). It is not
//! cryptographic; it only needs to decorrelate link-cost draws.

use rand::RngCore;

/// Deterministic 64-bit generator with O(1) state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a raw seed.
    pub(crate) fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Mixes several words into a single well-distributed seed.
    pub(crate) fn from_words(words: &[u64]) -> Self {
        let mut s = SplitMix64::new(0x9E37_79B9_7F4A_7C15);
        for &w in words {
            s.state ^= w;
            s.next_u64();
        }
        s
    }

    fn next(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

impl RngCore for SplitMix64 {
    fn next_u32(&mut self) -> u32 {
        (self.next() >> 32) as u32
    }

    fn next_u64(&mut self) -> u64 {
        self.next()
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }

    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), rand::Error> {
        self.fill_bytes(dest);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn deterministic_per_seed() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SplitMix64::new(1);
        let mut b = SplitMix64::new(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn from_words_is_order_sensitive() {
        let mut a = SplitMix64::from_words(&[1, 2]);
        let mut b = SplitMix64::from_words(&[2, 1]);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn uniform_floats_are_in_unit_interval() {
        let mut rng = SplitMix64::new(7);
        for _ in 0..1000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn fill_bytes_handles_unaligned_lengths() {
        let mut rng = SplitMix64::new(9);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
