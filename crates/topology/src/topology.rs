//! The assembled topology: ISP registry + cost model + latency model.

use crate::cost::{CostDistributions, IspPairCost, LinkCostModel, PairwiseCost};
use crate::isp::IspRegistry;
use crate::latency::LatencyModel;
use p2p_types::{Cost, IspId, P2pError, PeerId, SimDuration};
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// Which cost model variant a [`Topology`] should use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CostModelKind {
    /// One independent draw per peer pair ([`PairwiseCost`]); the default
    /// and the reading used for all headline experiments.
    Pairwise,
    /// One draw per ISP pair ([`IspPairCost`]).
    PerIspPair,
}

/// Configuration for building a [`Topology`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TopologyConfig {
    /// Number of ISPs `M` (paper: 5).
    pub isp_count: u16,
    /// Link-cost distributions (paper defaults available).
    pub distributions: CostDistributions,
    /// Cost model granularity.
    pub cost_model: CostModelKind,
    /// Cost → latency mapping for in-slot message timing.
    pub latency: LatencyModel,
    /// Seed for all cost draws.
    pub seed: u64,
}

impl TopologyConfig {
    /// The paper's evaluation topology: `isp_count` ISPs, truncated-normal
    /// costs, pairwise draws, default latency mapping, seed 0.
    pub fn paper_defaults(isp_count: u16) -> Self {
        TopologyConfig {
            isp_count,
            distributions: CostDistributions::paper_defaults(),
            cost_model: CostModelKind::Pairwise,
            latency: LatencyModel::paper_defaults(),
            seed: 0,
        }
    }

    /// Replaces the seed (builder-style).
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Replaces the cost distributions (builder-style).
    #[must_use]
    pub fn with_distributions(mut self, dists: CostDistributions) -> Self {
        self.distributions = dists;
        self
    }
}

/// The network substrate every experiment runs on: who is in which ISP,
/// what each link costs, and how long messages take.
///
/// # Examples
///
/// ```
/// use p2p_topology::{Topology, TopologyConfig};
/// use p2p_types::{PeerId, IspId};
///
/// let mut topo = Topology::new(TopologyConfig::paper_defaults(2)).unwrap();
/// topo.register_peer(PeerId::new(0), IspId::new(0)).unwrap();
/// topo.register_peer(PeerId::new(1), IspId::new(1)).unwrap();
/// assert!(topo.cost(PeerId::new(0), PeerId::new(1)).unwrap().get() >= 1.0);
/// ```
#[derive(Debug, Clone)]
pub struct Topology {
    config: TopologyConfig,
    registry: IspRegistry,
    cost_model: Arc<dyn LinkCostModel>,
    /// Multiplier applied to every inter-ISP link cost (mid-run repricing;
    /// 1.0 = the base model unchanged).
    inter_scale: f64,
    /// Per-ISP multiplier applied to inter-ISP links with that ISP as an
    /// endpoint (outages / transit repricing; intra-ISP links unaffected).
    isp_scales: Vec<f64>,
}

impl Topology {
    /// Builds a topology from configuration.
    ///
    /// # Errors
    ///
    /// Returns [`P2pError::InvalidConfig`] for zero ISPs.
    pub fn new(config: TopologyConfig) -> Result<Self, P2pError> {
        let registry = IspRegistry::new(config.isp_count)?;
        let cost_model: Arc<dyn LinkCostModel> = match config.cost_model {
            CostModelKind::Pairwise => {
                Arc::new(PairwiseCost::new(config.distributions, config.seed))
            }
            CostModelKind::PerIspPair => {
                Arc::new(IspPairCost::new(config.isp_count, config.distributions, config.seed)?)
            }
        };
        let isp_scales = vec![1.0; config.isp_count as usize];
        Ok(Topology { config, registry, cost_model, inter_scale: 1.0, isp_scales })
    }

    /// The configuration this topology was built from.
    pub fn config(&self) -> &TopologyConfig {
        &self.config
    }

    /// The underlying peer → ISP registry.
    pub fn registry(&self) -> &IspRegistry {
        &self.registry
    }

    /// Number of ISPs.
    pub fn isp_count(&self) -> u16 {
        self.registry.isp_count()
    }

    /// Registers a peer with an ISP.
    ///
    /// # Errors
    ///
    /// Returns [`P2pError::InvalidConfig`] if the ISP id is out of range.
    pub fn register_peer(&mut self, peer: PeerId, isp: IspId) -> Result<(), P2pError> {
        self.registry.register(peer, isp)
    }

    /// Unregisters a departed peer.
    pub fn unregister_peer(&mut self, peer: PeerId) {
        self.registry.unregister(peer);
    }

    /// The ISP of a registered peer.
    ///
    /// # Errors
    ///
    /// Returns [`P2pError::UnknownPeer`] for unregistered peers.
    pub fn isp_of(&self, peer: PeerId) -> Result<IspId, P2pError> {
        self.registry.isp_of(peer)
    }

    /// The network cost `w_{u→d}` from `from` to `to`, including any
    /// mid-run repricing applied via [`Topology::set_inter_cost_scale`] or
    /// [`Topology::set_isp_cost_scale`].
    ///
    /// # Errors
    ///
    /// Returns [`P2pError::UnknownPeer`] if either peer is unregistered.
    pub fn cost(&self, from: PeerId, to: PeerId) -> Result<Cost, P2pError> {
        let from_isp = self.registry.isp_of(from)?;
        let to_isp = self.registry.isp_of(to)?;
        let base = self.cost_model.link_cost(from, from_isp, to, to_isp);
        if from_isp == to_isp {
            return Ok(base);
        }
        let scale =
            self.inter_scale * self.isp_scales[from_isp.index()] * self.isp_scales[to_isp.index()];
        Ok(Cost::new(base.get() * scale))
    }

    /// Reprices every inter-ISP link by a multiplicative `factor` (> 1
    /// models transit becoming more expensive, < 1 cheaper peering).
    /// Replaces any previous global scale; intra-ISP links are untouched.
    ///
    /// # Errors
    ///
    /// Returns [`P2pError::InvalidConfig`] for non-positive or non-finite
    /// factors.
    pub fn set_inter_cost_scale(&mut self, factor: f64) -> Result<(), P2pError> {
        validate_scale(factor)?;
        self.inter_scale = factor;
        Ok(())
    }

    /// Reprices the inter-ISP links touching one ISP by `factor` (an outage
    /// or congested transit link is a large factor; recovery resets to 1).
    /// Replaces any previous scale for that ISP.
    ///
    /// # Errors
    ///
    /// Returns [`P2pError::InvalidConfig`] for an out-of-range ISP or a
    /// non-positive/non-finite factor.
    pub fn set_isp_cost_scale(&mut self, isp: IspId, factor: f64) -> Result<(), P2pError> {
        validate_scale(factor)?;
        let Some(slot) = self.isp_scales.get_mut(isp.index()) else {
            return Err(P2pError::invalid_config("isp", "id out of range"));
        };
        *slot = factor;
        Ok(())
    }

    /// Drops all mid-run repricing, restoring the base cost model.
    pub fn reset_cost_scales(&mut self) {
        self.inter_scale = 1.0;
        self.isp_scales.iter_mut().for_each(|s| *s = 1.0);
    }

    /// The current global inter-ISP cost multiplier.
    pub fn inter_cost_scale(&self) -> f64 {
        self.inter_scale
    }

    /// The current cost multiplier of one ISP's inter-ISP links.
    ///
    /// # Errors
    ///
    /// Returns [`P2pError::InvalidConfig`] for an out-of-range ISP.
    pub fn isp_cost_scale(&self, isp: IspId) -> Result<f64, P2pError> {
        self.isp_scales
            .get(isp.index())
            .copied()
            .ok_or_else(|| P2pError::invalid_config("isp", "id out of range"))
    }

    /// Whether a transfer between the two peers crosses an ISP boundary.
    ///
    /// # Errors
    ///
    /// Returns [`P2pError::UnknownPeer`] if either peer is unregistered.
    pub fn is_inter_isp(&self, a: PeerId, b: PeerId) -> Result<bool, P2pError> {
        Ok(self.registry.isp_of(a)? != self.registry.isp_of(b)?)
    }

    /// One-way message latency between two registered peers.
    ///
    /// # Errors
    ///
    /// Returns [`P2pError::UnknownPeer`] if either peer is unregistered.
    pub fn one_way_latency(&self, from: PeerId, to: PeerId) -> Result<SimDuration, P2pError> {
        Ok(self.config.latency.one_way(self.cost(from, to)?))
    }
}

fn validate_scale(factor: f64) -> Result<(), P2pError> {
    if !factor.is_finite() || factor <= 0.0 {
        return Err(P2pError::invalid_config("cost_scale", "must be positive and finite"));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn topo() -> Topology {
        let mut t = Topology::new(TopologyConfig::paper_defaults(3)).unwrap();
        t.register_peer(PeerId::new(0), IspId::new(0)).unwrap();
        t.register_peer(PeerId::new(1), IspId::new(0)).unwrap();
        t.register_peer(PeerId::new(2), IspId::new(1)).unwrap();
        t
    }

    #[test]
    fn intra_and_inter_costs_differ_in_range() {
        let t = topo();
        let intra = t.cost(PeerId::new(0), PeerId::new(1)).unwrap();
        let inter = t.cost(PeerId::new(0), PeerId::new(2)).unwrap();
        assert!((0.0..=2.0).contains(&intra.get()));
        assert!((1.0..=10.0).contains(&inter.get()));
        assert!(!t.is_inter_isp(PeerId::new(0), PeerId::new(1)).unwrap());
        assert!(t.is_inter_isp(PeerId::new(0), PeerId::new(2)).unwrap());
    }

    #[test]
    fn unknown_peer_propagates() {
        let t = topo();
        assert!(t.cost(PeerId::new(0), PeerId::new(9)).is_err());
        assert!(t.is_inter_isp(PeerId::new(9), PeerId::new(0)).is_err());
        assert!(t.one_way_latency(PeerId::new(9), PeerId::new(0)).is_err());
    }

    #[test]
    fn latency_reflects_cost() {
        let t = topo();
        let c = t.cost(PeerId::new(0), PeerId::new(2)).unwrap();
        let l = t.one_way_latency(PeerId::new(0), PeerId::new(2)).unwrap();
        let expected = LatencyModel::paper_defaults().one_way(c);
        assert_eq!(l, expected);
    }

    #[test]
    fn per_isp_pair_variant_builds() {
        let cfg = TopologyConfig {
            cost_model: CostModelKind::PerIspPair,
            ..TopologyConfig::paper_defaults(2)
        };
        let mut t = Topology::new(cfg).unwrap();
        t.register_peer(PeerId::new(0), IspId::new(0)).unwrap();
        t.register_peer(PeerId::new(1), IspId::new(1)).unwrap();
        t.register_peer(PeerId::new(2), IspId::new(0)).unwrap();
        t.register_peer(PeerId::new(3), IspId::new(1)).unwrap();
        // Per-ISP-pair: both cross-ISP links share a cost.
        let w1 = t.cost(PeerId::new(0), PeerId::new(1)).unwrap();
        let w2 = t.cost(PeerId::new(2), PeerId::new(3)).unwrap();
        assert_eq!(w1, w2);
    }

    #[test]
    fn builder_methods() {
        let cfg = TopologyConfig::paper_defaults(2)
            .with_seed(7)
            .with_distributions(CostDistributions::paper_defaults());
        assert_eq!(cfg.seed, 7);
        let t = Topology::new(cfg).unwrap();
        assert_eq!(t.isp_count(), 2);
        assert_eq!(t.config().seed, 7);
    }

    #[test]
    fn inter_cost_scaling_reprices_only_cross_isp_links() {
        let mut t = topo();
        let intra0 = t.cost(PeerId::new(0), PeerId::new(1)).unwrap();
        let inter0 = t.cost(PeerId::new(0), PeerId::new(2)).unwrap();
        t.set_inter_cost_scale(3.0).unwrap();
        assert_eq!(t.inter_cost_scale(), 3.0);
        assert_eq!(t.cost(PeerId::new(0), PeerId::new(1)).unwrap(), intra0);
        let scaled = t.cost(PeerId::new(0), PeerId::new(2)).unwrap();
        assert!((scaled.get() - 3.0 * inter0.get()).abs() < 1e-12);
        // Latency follows the repriced cost.
        let l = t.one_way_latency(PeerId::new(0), PeerId::new(2)).unwrap();
        assert_eq!(l, LatencyModel::paper_defaults().one_way(scaled));
        t.reset_cost_scales();
        assert_eq!(t.cost(PeerId::new(0), PeerId::new(2)).unwrap(), inter0);
    }

    #[test]
    fn per_isp_scaling_composes_with_global() {
        let mut t = topo();
        let inter0 = t.cost(PeerId::new(0), PeerId::new(2)).unwrap();
        t.set_isp_cost_scale(IspId::new(1), 10.0).unwrap();
        t.set_inter_cost_scale(2.0).unwrap();
        let scaled = t.cost(PeerId::new(0), PeerId::new(2)).unwrap();
        assert!((scaled.get() - 20.0 * inter0.get()).abs() < 1e-9);
        // Intra-ISP link inside the "failed" ISP is untouched.
        let intra = t.cost(PeerId::new(0), PeerId::new(1)).unwrap();
        t.set_isp_cost_scale(IspId::new(0), 5.0).unwrap();
        assert_eq!(t.cost(PeerId::new(0), PeerId::new(1)).unwrap(), intra);
        assert_eq!(t.isp_cost_scale(IspId::new(0)).unwrap(), 5.0);
    }

    #[test]
    fn cost_scale_validation() {
        let mut t = topo();
        assert!(t.set_inter_cost_scale(0.0).is_err());
        assert!(t.set_inter_cost_scale(f64::NAN).is_err());
        assert!(t.set_isp_cost_scale(IspId::new(9), 2.0).is_err());
        assert!(t.isp_cost_scale(IspId::new(9)).is_err());
        assert!(t.set_isp_cost_scale(IspId::new(0), -1.0).is_err());
    }

    #[test]
    fn unregister_removes_peer() {
        let mut t = topo();
        t.unregister_peer(PeerId::new(0));
        assert!(t.isp_of(PeerId::new(0)).is_err());
        assert_eq!(t.registry().total_population(), 2);
    }
}
