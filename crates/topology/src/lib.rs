//! ISP topology and network-cost model.
//!
//! The paper deploys the P2P system over `M` ISPs. The network cost
//! `w_{u→d}` of shipping a chunk from peer `u` to peer `d` "has different
//! values between peers in different pairs of ISPs"; the evaluation draws
//! inter-ISP link costs from a truncated normal `N(5,1)` on `[1,10]` and
//! intra-ISP costs from `N(1,1)` on `[0,2]`, interpreting cost as latency.
//!
//! This crate provides:
//!
//! * [`IspRegistry`] — the peer → ISP assignment;
//! * [`LinkCostModel`] — the `w_{u→d}` abstraction, with two faithful
//!   implementations: [`PairwiseCost`] (an independent draw per peer pair,
//!   computed deterministically and statelessly from a seed) and
//!   [`IspPairCost`] (one draw per ISP pair);
//! * [`LatencyModel`] — the mapping from abstract cost units to simulated
//!   message latency, used by the in-slot auction emulation;
//! * [`Topology`] — the assembled view used by the rest of the system.
//!
//! # Examples
//!
//! ```
//! use p2p_topology::{Topology, TopologyConfig};
//! use p2p_types::{PeerId, IspId};
//!
//! let mut topo = Topology::new(TopologyConfig::paper_defaults(5)).unwrap();
//! topo.register_peer(PeerId::new(0), IspId::new(0)).unwrap();
//! topo.register_peer(PeerId::new(1), IspId::new(3)).unwrap();
//! let w = topo.cost(PeerId::new(0), PeerId::new(1)).unwrap();
//! assert!(w.get() >= 1.0 && w.get() <= 10.0); // inter-ISP range
//! assert!(topo.is_inter_isp(PeerId::new(0), PeerId::new(1)).unwrap());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cost;
pub mod isp;
pub mod latency;
mod splitmix;
mod topology;

pub use cost::{CostDistributions, IspPairCost, LinkCostModel, PairwiseCost};
pub use isp::IspRegistry;
pub use latency::LatencyModel;
pub use topology::{Topology, TopologyConfig};
