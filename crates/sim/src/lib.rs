//! Deterministic discrete-event simulation engine.
//!
//! A minimal, reusable DES core: a time-ordered event queue with stable
//! FIFO tie-breaking, a virtual clock, and a [`World`] trait the domain
//! logic implements. The streaming emulator uses it to run the paper's
//! in-slot distributed auctions with realistic message latencies, replacing
//! the authors' blade-server emulator with a reproducible substrate (see
//! DESIGN.md §2).
//!
//! # Examples
//!
//! ```
//! use p2p_sim::{Simulation, World, Context};
//! use p2p_types::{SimTime, SimDuration};
//!
//! struct Counter { fired: u32 }
//! impl World for Counter {
//!     type Event = &'static str;
//!     fn handle(&mut self, ctx: &mut Context<'_, Self::Event>, ev: Self::Event) {
//!         self.fired += 1;
//!         if ev == "tick" && self.fired < 3 {
//!             ctx.schedule_in(SimDuration::from_secs(1), "tick");
//!         }
//!     }
//! }
//!
//! let mut sim = Simulation::new(Counter { fired: 0 });
//! sim.schedule_at(SimTime::ZERO, "tick");
//! let stats = sim.run_to_completion();
//! assert_eq!(sim.world().fired, 3);
//! assert_eq!(stats.events_processed, 3);
//! assert_eq!(sim.now().as_secs_f64(), 2.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod arena;
pub mod queue;
pub mod rng;

pub use arena::{MailKey, MailboxArena};
pub use queue::EventQueue;
pub use rng::{derive_seed, seeded_rng};

use p2p_types::{SimDuration, SimTime};

/// Domain logic driven by the simulation: consumes events, mutates itself,
/// and schedules follow-up events through the [`Context`].
pub trait World {
    /// The event type this world understands.
    type Event;

    /// Handles one event at the context's current time.
    fn handle(&mut self, ctx: &mut Context<'_, Self::Event>, event: Self::Event);
}

/// Scheduling handle passed to [`World::handle`].
#[derive(Debug)]
pub struct Context<'a, E> {
    now: SimTime,
    queue: &'a mut EventQueue<E>,
    stop_requested: &'a mut bool,
}

impl<'a, E> Context<'a, E> {
    /// The current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedules an event at an absolute time.
    ///
    /// # Panics
    ///
    /// Panics if `at` is in the past (determinism guard: the engine never
    /// reorders history).
    pub fn schedule_at(&mut self, at: SimTime, event: E) {
        assert!(at >= self.now, "cannot schedule into the past");
        self.queue.push(at, event);
    }

    /// Schedules an event `delay` after the current time.
    pub fn schedule_in(&mut self, delay: SimDuration, event: E) {
        self.queue.push(self.now + delay, event);
    }

    /// Requests the run loop to stop after this event completes.
    pub fn stop(&mut self) {
        *self.stop_requested = true;
    }

    /// Number of events currently pending.
    pub fn pending(&self) -> usize {
        self.queue.len()
    }
}

/// Statistics from one run call.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RunStats {
    /// Events handled during the run.
    pub events_processed: u64,
    /// Whether the run ended because the horizon was reached (vs queue
    /// exhaustion or an explicit stop).
    pub hit_horizon: bool,
    /// Whether the world requested a stop.
    pub stopped: bool,
    /// High-water mark of the pending-event queue during the run
    /// (sampled before each pop, so it includes the event about to fire).
    pub peak_pending: usize,
}

/// The simulation driver: owns the world, the queue and the clock.
#[derive(Debug)]
pub struct Simulation<W: World> {
    world: W,
    queue: EventQueue<W::Event>,
    now: SimTime,
    max_events: u64,
}

impl<W: World> Simulation<W> {
    /// Creates a simulation at time zero.
    pub fn new(world: W) -> Self {
        Simulation { world, queue: EventQueue::new(), now: SimTime::ZERO, max_events: u64::MAX }
    }

    /// Caps the total number of events a single run call may process
    /// (guard against runaway event loops). Default: unlimited.
    #[must_use]
    pub fn with_max_events(mut self, max_events: u64) -> Self {
        self.max_events = max_events;
        self
    }

    /// Preallocates queue space for `capacity` pending events (see
    /// [`EventQueue::with_capacity`]). Only meaningful before the first
    /// schedule call.
    #[must_use]
    pub fn with_event_capacity(mut self, capacity: usize) -> Self {
        if self.queue.is_empty() {
            self.queue = EventQueue::with_capacity(capacity);
        }
        self
    }

    /// The current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Immutable access to the world.
    pub fn world(&self) -> &W {
        &self.world
    }

    /// Mutable access to the world (for setup between runs).
    pub fn world_mut(&mut self) -> &mut W {
        &mut self.world
    }

    /// Consumes the simulation and returns the world.
    pub fn into_world(self) -> W {
        self.world
    }

    /// Number of pending events.
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// Schedules an event from outside the world (setup).
    ///
    /// # Panics
    ///
    /// Panics if `at` is in the past.
    pub fn schedule_at(&mut self, at: SimTime, event: W::Event) {
        assert!(at >= self.now, "cannot schedule into the past");
        self.queue.push(at, event);
    }

    /// Runs until the queue empties, the world stops, or `horizon` is
    /// reached — whichever comes first. Events stamped exactly at the
    /// horizon are *not* processed; the clock is left at `horizon` if it
    /// was reached, otherwise at the last event time.
    pub fn run_until(&mut self, horizon: SimTime) -> RunStats {
        let mut stats = RunStats::default();
        let mut stop = false;
        while let Some(at) = self.queue.next_time() {
            stats.peak_pending = stats.peak_pending.max(self.queue.len());
            if at >= horizon {
                self.now = horizon;
                stats.hit_horizon = true;
                return stats;
            }
            let (at, event) = self.queue.pop().expect("peeked entry exists");
            self.now = at;
            let mut ctx = Context { now: at, queue: &mut self.queue, stop_requested: &mut stop };
            self.world.handle(&mut ctx, event);
            stats.events_processed += 1;
            if stop {
                stats.stopped = true;
                return stats;
            }
            if stats.events_processed >= self.max_events {
                return stats;
            }
        }
        stats
    }

    /// Runs until the queue is exhausted or the world stops.
    pub fn run_to_completion(&mut self) -> RunStats {
        let mut stats = RunStats::default();
        let mut stop = false;
        loop {
            stats.peak_pending = stats.peak_pending.max(self.queue.len());
            let Some((at, event)) = self.queue.pop() else { break };
            self.now = at;
            let mut ctx = Context { now: at, queue: &mut self.queue, stop_requested: &mut stop };
            self.world.handle(&mut ctx, event);
            stats.events_processed += 1;
            if stop {
                stats.stopped = true;
                return stats;
            }
            if stats.events_processed >= self.max_events {
                return stats;
            }
        }
        stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug, PartialEq)]
    enum Ev {
        Ping(u32),
        StopNow,
    }

    struct Recorder {
        seen: Vec<(f64, u32)>,
    }

    impl World for Recorder {
        type Event = Ev;
        fn handle(&mut self, ctx: &mut Context<'_, Ev>, ev: Ev) {
            match ev {
                Ev::Ping(i) => {
                    self.seen.push((ctx.now().as_secs_f64(), i));
                    if i < 5 {
                        ctx.schedule_in(SimDuration::from_secs(1), Ev::Ping(i + 1));
                    }
                }
                Ev::StopNow => ctx.stop(),
            }
        }
    }

    #[test]
    fn events_fire_in_time_order() {
        let mut sim = Simulation::new(Recorder { seen: vec![] });
        sim.schedule_at(SimTime::from_secs_f64(3.0), Ev::Ping(100));
        sim.schedule_at(SimTime::from_secs_f64(1.0), Ev::Ping(200));
        let stats = sim.run_to_completion();
        assert_eq!(stats.events_processed, 2);
        assert_eq!(sim.world().seen, vec![(1.0, 200), (3.0, 100)]);
    }

    #[test]
    fn fifo_tie_break_for_simultaneous_events() {
        let mut sim = Simulation::new(Recorder { seen: vec![] });
        sim.schedule_at(SimTime::from_secs_f64(1.0), Ev::Ping(10));
        sim.schedule_at(SimTime::from_secs_f64(1.0), Ev::Ping(20));
        sim.schedule_at(SimTime::from_secs_f64(1.0), Ev::Ping(30));
        // Pings self-reschedule; cap them by stopping at 1.5 s.
        sim.run_until(SimTime::from_secs_f64(1.5));
        let order: Vec<u32> = sim.world().seen.iter().map(|&(_, i)| i).collect();
        assert_eq!(order, vec![10, 20, 30]);
    }

    #[test]
    fn run_until_respects_horizon() {
        let mut sim = Simulation::new(Recorder { seen: vec![] });
        sim.schedule_at(SimTime::ZERO, Ev::Ping(0));
        let stats = sim.run_until(SimTime::from_secs_f64(2.5));
        assert!(stats.hit_horizon);
        // Pings at t=0,1,2 fire; t=3 is beyond the horizon.
        assert_eq!(sim.world().seen.len(), 3);
        assert_eq!(sim.now(), SimTime::from_secs_f64(2.5));
        // The pending ping at t=3 still exists.
        assert_eq!(sim.pending(), 1);
    }

    #[test]
    fn stop_request_halts_loop() {
        let mut sim = Simulation::new(Recorder { seen: vec![] });
        sim.schedule_at(SimTime::ZERO, Ev::StopNow);
        sim.schedule_at(SimTime::from_secs_f64(1.0), Ev::Ping(1));
        let stats = sim.run_to_completion();
        assert!(stats.stopped);
        assert_eq!(stats.events_processed, 1);
        assert!(sim.world().seen.is_empty());
    }

    #[test]
    fn max_events_guard() {
        let mut sim = Simulation::new(Recorder { seen: vec![] }).with_max_events(2);
        sim.schedule_at(SimTime::ZERO, Ev::Ping(0));
        let stats = sim.run_to_completion();
        assert_eq!(stats.events_processed, 2);
    }

    #[test]
    #[should_panic(expected = "past")]
    fn scheduling_into_the_past_panics() {
        struct Bad;
        impl World for Bad {
            type Event = ();
            fn handle(&mut self, ctx: &mut Context<'_, ()>, _: ()) {
                // now is 1 s; scheduling at 0 s must panic
                ctx.schedule_at(SimTime::ZERO, ());
            }
        }
        let mut sim = Simulation::new(Bad);
        sim.schedule_at(SimTime::from_secs_f64(1.0), ());
        sim.run_to_completion();
    }

    #[test]
    fn peak_pending_tracks_the_queue_high_water_mark() {
        let mut sim = Simulation::new(Recorder { seen: vec![] });
        // Indices ≥ 5 do not self-reschedule, so the queue only drains.
        sim.schedule_at(SimTime::from_secs_f64(1.0), Ev::Ping(100));
        sim.schedule_at(SimTime::from_secs_f64(2.0), Ev::Ping(200));
        sim.schedule_at(SimTime::from_secs_f64(3.0), Ev::Ping(300));
        let stats = sim.run_to_completion();
        assert_eq!(stats.peak_pending, 3);
        assert_eq!(stats.events_processed, 3);
    }

    #[test]
    fn world_accessors() {
        let mut sim = Simulation::new(Recorder { seen: vec![] });
        sim.world_mut().seen.push((0.0, 0));
        assert_eq!(sim.into_world().seen.len(), 1);
    }
}
