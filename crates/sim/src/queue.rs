//! Time-ordered event queue with stable FIFO tie-breaking.

use p2p_types::SimTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Internal heap entry ordered by `(time, insertion sequence)` so that
/// simultaneous events pop in insertion order — a requirement for
/// deterministic simulation.
#[derive(Debug)]
struct Entry<E> {
    at: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}

impl<E> Eq for Entry<E> {}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse: BinaryHeap is a max-heap but we want the earliest entry
        // on top.
        other.at.cmp(&self.at).then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A min-priority queue of `(SimTime, E)` pairs with FIFO order among
/// equal-time entries.
///
/// # Examples
///
/// ```
/// use p2p_sim::EventQueue;
/// use p2p_types::SimTime;
///
/// let mut q = EventQueue::new();
/// q.push(SimTime::from_secs_f64(2.0), "late");
/// q.push(SimTime::from_secs_f64(1.0), "early");
/// assert_eq!(q.pop().unwrap().1, "early");
/// assert_eq!(q.pop().unwrap().1, "late");
/// assert!(q.pop().is_none());
/// ```
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    seq: u64,
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue { heap: BinaryHeap::new(), seq: 0 }
    }

    /// Creates an empty queue with space for `capacity` events — swarm
    /// runs schedule one poll per peer up front, and preallocating avoids
    /// the doubling-regrowth churn at 10⁵ peers.
    pub fn with_capacity(capacity: usize) -> Self {
        EventQueue { heap: BinaryHeap::with_capacity(capacity), seq: 0 }
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Returns `true` if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Enqueues an event at `at`.
    pub fn push(&mut self, at: SimTime, event: E) {
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Entry { at, seq, event });
    }

    /// Dequeues the earliest event.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.heap.pop().map(|e| (e.at, e.event))
    }

    /// Time stamp of the earliest pending event.
    pub fn next_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.at)
    }

    /// Removes every pending event.
    pub fn clear(&mut self) {
        self.heap.clear();
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        EventQueue::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        for (t, v) in [(5.0, 'e'), (1.0, 'a'), (3.0, 'c'), (2.0, 'b'), (4.0, 'd')] {
            q.push(SimTime::from_secs_f64(t), v);
        }
        let mut out = String::new();
        while let Some((_, v)) = q.pop() {
            out.push(v);
        }
        assert_eq!(out, "abcde");
    }

    #[test]
    fn fifo_among_equal_times() {
        let mut q = EventQueue::new();
        let t = SimTime::from_secs_f64(1.0);
        for i in 0..100 {
            q.push(t, i);
        }
        for i in 0..100 {
            assert_eq!(q.pop().unwrap().1, i);
        }
    }

    #[test]
    fn next_time_and_len() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.next_time(), None);
        q.push(SimTime::from_secs_f64(7.0), ());
        q.push(SimTime::from_secs_f64(3.0), ());
        assert_eq!(q.len(), 2);
        assert_eq!(q.next_time(), Some(SimTime::from_secs_f64(3.0)));
        q.clear();
        assert!(q.is_empty());
    }

    #[test]
    fn interleaved_push_pop_preserves_order() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_secs_f64(1.0), 1);
        q.push(SimTime::from_secs_f64(3.0), 3);
        assert_eq!(q.pop().unwrap().1, 1);
        q.push(SimTime::from_secs_f64(2.0), 2);
        assert_eq!(q.pop().unwrap().1, 2);
        assert_eq!(q.pop().unwrap().1, 3);
    }
}
