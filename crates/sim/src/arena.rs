//! Arena-backed mailboxes: a slab of reusable message buffers addressed
//! by generation-checked keys.
//!
//! The reactive swarm simulator used to push one heap event per delivered
//! message. At 10⁶ peers the event queue becomes the hot structure: every
//! push/pop sifts a fat payload through the binary heap, and every
//! delivery allocates. [`MailboxArena`] splits the two concerns: the heap
//! carries a thin [`MailKey`] (8 bytes) while the message payloads live in
//! per-batch `Vec`s that are recycled — *not freed* — after delivery, so
//! steady-state dispatch allocates nothing once every buffer has grown to
//! its working size.
//!
//! Keys are generation-checked: [`recycle`](MailboxArena::recycle) bumps
//! the slot's generation, so a stale key kept across a recycle panics
//! loudly instead of silently reading another batch's mail. Slots handed
//! out by [`take`](MailboxArena::take) stay off the free list until they
//! are recycled, so re-entrant allocation during batch processing can
//! never alias the batch being drained.
//!
//! # Examples
//!
//! ```
//! use p2p_sim::MailboxArena;
//!
//! let mut arena: MailboxArena<u32> = MailboxArena::new();
//! let key = arena.alloc();
//! arena.push(key, 7);
//! arena.push(key, 8);
//! let mut batch = arena.take(key);
//! assert_eq!(batch, vec![7, 8]);
//! batch.clear();
//! arena.recycle(key, batch);
//! // The slot is reused, but the old key is dead.
//! let next = arena.alloc();
//! assert_ne!(next, key);
//! ```

/// Generation-checked handle to one mailbox slot in a [`MailboxArena`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MailKey {
    index: u32,
    gen: u32,
}

#[derive(Debug)]
struct Slot<T> {
    gen: u32,
    /// `None` while the batch is out via [`MailboxArena::take`].
    items: Option<Vec<T>>,
}

/// A slab of reusable mailbox buffers with a freelist (see module docs).
#[derive(Debug, Default)]
pub struct MailboxArena<T> {
    slots: Vec<Slot<T>>,
    free: Vec<u32>,
}

impl<T> MailboxArena<T> {
    /// An empty arena.
    pub fn new() -> Self {
        MailboxArena { slots: Vec::new(), free: Vec::new() }
    }

    /// An empty arena with space reserved for `slots` concurrent batches.
    pub fn with_capacity(slots: usize) -> Self {
        MailboxArena { slots: Vec::with_capacity(slots), free: Vec::with_capacity(slots) }
    }

    /// Allocates an empty mailbox, reusing a recycled slot (and its buffer
    /// capacity) when one is free.
    pub fn alloc(&mut self) -> MailKey {
        match self.free.pop() {
            Some(index) => {
                let slot = &mut self.slots[index as usize];
                debug_assert!(slot.items.as_ref().is_some_and(Vec::is_empty));
                MailKey { index, gen: slot.gen }
            }
            None => {
                let index = u32::try_from(self.slots.len()).expect("mailbox arena overflow");
                self.slots.push(Slot { gen: 0, items: Some(Vec::new()) });
                MailKey { index, gen: 0 }
            }
        }
    }

    /// Appends one item to a live mailbox.
    ///
    /// # Panics
    ///
    /// Panics if `key` is stale (the slot was recycled) or the batch is
    /// currently out via [`take`](Self::take).
    pub fn push(&mut self, key: MailKey, item: T) {
        let slot = &mut self.slots[key.index as usize];
        assert_eq!(slot.gen, key.gen, "stale mailbox key");
        slot.items.as_mut().expect("mailbox batch is out").push(item);
    }

    /// Number of items currently queued in a live mailbox.
    ///
    /// # Panics
    ///
    /// Panics if `key` is stale or the batch is out.
    pub fn len(&self, key: MailKey) -> usize {
        let slot = &self.slots[key.index as usize];
        assert_eq!(slot.gen, key.gen, "stale mailbox key");
        slot.items.as_ref().expect("mailbox batch is out").len()
    }

    /// Whether `key` still addresses a live (not recycled) mailbox.
    pub fn is_live(&self, key: MailKey) -> bool {
        self.slots.get(key.index as usize).is_some_and(|s| s.gen == key.gen)
    }

    /// Moves the batch out for processing. The slot stays reserved (off
    /// the freelist) until the buffer comes back via
    /// [`recycle`](Self::recycle), so allocations made while the batch is
    /// being drained can never alias it.
    ///
    /// # Panics
    ///
    /// Panics if `key` is stale or the batch is already out.
    pub fn take(&mut self, key: MailKey) -> Vec<T> {
        let slot = &mut self.slots[key.index as usize];
        assert_eq!(slot.gen, key.gen, "stale mailbox key");
        slot.items.take().expect("mailbox batch is out")
    }

    /// Returns a drained buffer to its slot and frees the slot for reuse.
    /// The buffer is cleared (capacity retained) and the generation bumps,
    /// killing every outstanding key to this slot.
    ///
    /// # Panics
    ///
    /// Panics if `key` is stale or the batch was never taken.
    pub fn recycle(&mut self, key: MailKey, mut buffer: Vec<T>) {
        let slot = &mut self.slots[key.index as usize];
        assert_eq!(slot.gen, key.gen, "stale mailbox key");
        assert!(slot.items.is_none(), "recycle without a matching take");
        buffer.clear();
        slot.items = Some(buffer);
        slot.gen = slot.gen.wrapping_add(1);
        self.free.push(key.index);
    }

    /// Total slots ever created (live + free); the arena's high-water mark
    /// of concurrent batches.
    pub fn slot_count(&self) -> usize {
        self.slots.len()
    }

    /// Slots currently live (allocated and not yet recycled).
    pub fn live(&self) -> usize {
        self.slots.len() - self.free.len()
    }

    /// Whether no slot is live.
    pub fn is_empty(&self) -> bool {
        self.live() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_take_recycle_roundtrip() {
        let mut arena: MailboxArena<&'static str> = MailboxArena::new();
        let key = arena.alloc();
        arena.push(key, "a");
        arena.push(key, "b");
        assert_eq!(arena.len(key), 2);
        assert_eq!(arena.live(), 1);
        let batch = arena.take(key);
        assert_eq!(batch, vec!["a", "b"]);
        arena.recycle(key, batch);
        assert!(arena.is_empty());
    }

    #[test]
    fn recycled_slots_are_reused_with_fresh_generations() {
        let mut arena: MailboxArena<u64> = MailboxArena::new();
        let first = arena.alloc();
        arena.push(first, 1);
        let buf = arena.take(first);
        arena.recycle(first, buf);
        let second = arena.alloc();
        // Same slot, new generation: the old key is dead.
        assert_eq!(arena.slot_count(), 1);
        assert_ne!(first, second);
        assert!(!arena.is_live(first));
        assert!(arena.is_live(second));
    }

    #[test]
    fn recycled_buffers_keep_their_capacity() {
        let mut arena: MailboxArena<u64> = MailboxArena::new();
        let key = arena.alloc();
        for i in 0..64 {
            arena.push(key, i);
        }
        let batch = arena.take(key);
        let grown = batch.capacity();
        assert!(grown >= 64);
        arena.recycle(key, batch);
        let again = arena.alloc();
        assert_eq!(arena.take(again).capacity(), grown);
    }

    #[test]
    fn taken_slot_is_not_reallocated_until_recycled() {
        let mut arena: MailboxArena<u8> = MailboxArena::new();
        let key = arena.alloc();
        arena.push(key, 9);
        let batch = arena.take(key);
        // A concurrent allocation during processing must not alias.
        let other = arena.alloc();
        assert_ne!(other.index, key.index);
        arena.recycle(key, batch);
    }

    #[test]
    #[should_panic(expected = "stale mailbox key")]
    fn stale_key_panics() {
        let mut arena: MailboxArena<u8> = MailboxArena::new();
        let key = arena.alloc();
        let buf = arena.take(key);
        arena.recycle(key, buf);
        arena.alloc();
        arena.push(key, 1);
    }

    #[test]
    #[should_panic(expected = "mailbox batch is out")]
    fn pushing_while_batch_is_out_panics() {
        let mut arena: MailboxArena<u8> = MailboxArena::new();
        let key = arena.alloc();
        let _batch = arena.take(key);
        arena.push(key, 1);
    }

    #[test]
    fn many_slots_interleave() {
        let mut arena: MailboxArena<usize> = MailboxArena::new();
        let keys: Vec<MailKey> = (0..8).map(|_| arena.alloc()).collect();
        for (i, &k) in keys.iter().enumerate() {
            arena.push(k, i);
        }
        assert_eq!(arena.live(), 8);
        // Drain out of order.
        for &k in keys.iter().rev() {
            let batch = arena.take(k);
            assert_eq!(batch.len(), 1);
            arena.recycle(k, batch);
        }
        assert!(arena.is_empty());
        assert_eq!(arena.slot_count(), 8);
    }
}
