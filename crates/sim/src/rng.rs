//! Seeded, stream-splittable randomness helpers.
//!
//! Every stochastic component of the system takes an explicit RNG; these
//! helpers make it easy to derive independent, reproducible streams from a
//! single experiment seed (e.g. one stream for churn, one for costs, one
//! per scheduler) so that changing how one component consumes randomness
//! does not perturb the others.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// Creates the standard deterministic RNG from a 64-bit seed.
///
/// `StdRng` (ChaCha-based) has a stable, platform-independent stream for a
/// given seed, which all experiments rely on for bit-identical reruns.
///
/// # Examples
///
/// ```
/// use p2p_sim::seeded_rng;
/// use rand::Rng;
///
/// let mut a = seeded_rng(7);
/// let mut b = seeded_rng(7);
/// assert_eq!(a.gen::<u64>(), b.gen::<u64>());
/// ```
pub fn seeded_rng(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// Derives an independent stream seed from a base seed and a stream label.
///
/// Uses the SplitMix64 finalizer, so nearby `(base, stream)` pairs map to
/// well-separated seeds.
///
/// # Examples
///
/// ```
/// use p2p_sim::derive_seed;
/// assert_ne!(derive_seed(1, 0), derive_seed(1, 1));
/// assert_ne!(derive_seed(1, 0), derive_seed(2, 0));
/// assert_eq!(derive_seed(5, 3), derive_seed(5, 3));
/// ```
pub fn derive_seed(base: u64, stream: u64) -> u64 {
    let mut z = base
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(stream)
        .wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn same_seed_same_stream() {
        let a: Vec<u32> = {
            let mut r = seeded_rng(42);
            (0..16).map(|_| r.gen()).collect()
        };
        let b: Vec<u32> = {
            let mut r = seeded_rng(42);
            (0..16).map(|_| r.gen()).collect()
        };
        assert_eq!(a, b);
    }

    #[test]
    fn derived_seeds_are_distinct() {
        use std::collections::HashSet;
        let mut seen = HashSet::new();
        for base in 0..20u64 {
            for stream in 0..20u64 {
                assert!(seen.insert(derive_seed(base, stream)));
            }
        }
    }

    #[test]
    fn derived_streams_are_uncorrelated_at_first_draw() {
        let mut r0 = seeded_rng(derive_seed(1, 0));
        let mut r1 = seeded_rng(derive_seed(1, 1));
        assert_ne!(r0.gen::<u64>(), r1.gen::<u64>());
    }
}
