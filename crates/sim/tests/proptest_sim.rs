//! Property tests for the discrete-event engine: global time ordering and
//! FIFO tie-breaking under arbitrary schedules.

use p2p_sim::{Context, EventQueue, Simulation, World};
use p2p_types::{SimDuration, SimTime};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Popping the queue yields events in (time, insertion) order no matter
    /// the push order.
    #[test]
    fn queue_pops_sorted(times in prop::collection::vec(0u64..10_000, 0..200)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.push(SimTime::from_micros(t), i);
        }
        let mut last: Option<(SimTime, usize)> = None;
        let mut count = 0;
        while let Some((at, idx)) = q.pop() {
            count += 1;
            if let Some((lt, lidx)) = last {
                prop_assert!(at >= lt);
                if at == lt {
                    prop_assert!(idx > lidx, "FIFO among equal times");
                }
            }
            prop_assert_eq!(SimTime::from_micros(times[idx]), at);
            last = Some((at, idx));
        }
        prop_assert_eq!(count, times.len());
    }

    /// A world that re-schedules events never observes time running
    /// backwards, and `run_until` never processes events at/after the
    /// horizon.
    #[test]
    fn simulation_time_is_monotone(
        initial in prop::collection::vec((0u64..5_000, 0u64..2_000), 1..40),
        horizon in 1_000u64..8_000,
    ) {
        struct W {
            observed: Vec<u64>,
        }
        impl World for W {
            type Event = u64; // re-schedule delay; 0 = leaf event
            fn handle(&mut self, ctx: &mut Context<'_, u64>, delay: u64) {
                self.observed.push(ctx.now().as_micros());
                if delay > 0 {
                    ctx.schedule_in(SimDuration::from_micros(delay), delay / 2);
                }
            }
        }
        let mut sim = Simulation::new(W { observed: vec![] }).with_max_events(10_000);
        for &(at, delay) in &initial {
            sim.schedule_at(SimTime::from_micros(at), delay);
        }
        sim.run_until(SimTime::from_micros(horizon));
        let obs = &sim.world().observed;
        for w in obs.windows(2) {
            prop_assert!(w[0] <= w[1], "time went backwards");
        }
        for &t in obs {
            prop_assert!(t < horizon, "event at/after horizon processed");
        }
    }

    /// Running to completion processes exactly the closure of scheduled
    /// events.
    #[test]
    fn run_to_completion_drains_queue(times in prop::collection::vec(0u64..1_000, 0..50)) {
        struct Count(u64);
        impl World for Count {
            type Event = ();
            fn handle(&mut self, _: &mut Context<'_, ()>, (): ()) {
                self.0 += 1;
            }
        }
        let mut sim = Simulation::new(Count(0));
        for &t in &times {
            sim.schedule_at(SimTime::from_micros(t), ());
        }
        let stats = sim.run_to_completion();
        prop_assert_eq!(stats.events_processed, times.len() as u64);
        prop_assert_eq!(sim.world().0, times.len() as u64);
        prop_assert_eq!(sim.pending(), 0);
    }
}
