//! # isp-p2p — socially-optimal ISP-aware P2P content distribution
//!
//! A complete Rust reproduction of *"Socially-optimal ISP-aware P2P Content
//! Distribution via a Primal-Dual Approach"* (Zhao & Wu, HotPOST / IEEE
//! ICDCS Workshops 2014): the primal-dual auction for chunk scheduling,
//! every substrate it runs on, the paper's evaluation system, and a harness
//! that regenerates every figure of the evaluation section.
//!
//! This crate is a facade that re-exports the workspace members:
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`types`] | `p2p-types` | ids, units, time, requests, errors |
//! | [`topology`] | `p2p-topology` | ISPs, link costs, latency model |
//! | [`workload`] | `p2p-workload` | Zipf–Mandelbrot, truncated normals, catalog, valuations, churn |
//! | [`sim`] | `p2p-sim` | deterministic discrete-event engine |
//! | [`netflow`] | `p2p-netflow` | exact min-cost-flow ground truth |
//! | [`core`] | `p2p-core` | **the paper's auction**: bidder/auctioneer logic, sync + distributed engines, Bertsekas expansion, Theorem 1 verifier |
//! | [`sched`] | `p2p-sched` | auction scheduler + locality/random/greedy/exact baselines |
//! | [`net`] | `p2p-net` | networked runtime: tracker + peer processes over a TCP wire protocol |
//! | [`streaming`] | `p2p-streaming` | the P2P VoD system emulator |
//! | [`scenario`] | `p2p-scenario` | declarative scenarios: mid-run event timelines, spec parser, runner |
//! | [`runtime`] | `p2p-runtime` | threaded process-per-peer execution |
//! | [`metrics`] | `p2p-metrics` | series, stats, CSV, ASCII plots |
//!
//! # Quickstart
//!
//! ```
//! use isp_p2p::prelude::*;
//!
//! // One slot of the welfare problem: two peers contend for a provider.
//! let mut b = WelfareInstance::builder();
//! let seed = b.add_provider(PeerId::new(10), 1);
//! let r0 = b.add_request(RequestId::new(PeerId::new(0), ChunkId::new(VideoId::new(0), 7)));
//! let r1 = b.add_request(RequestId::new(PeerId::new(1), ChunkId::new(VideoId::new(0), 7)));
//! b.add_edge(r0, seed, Valuation::new(6.0), Cost::new(1.0))?;
//! b.add_edge(r1, seed, Valuation::new(4.0), Cost::new(1.0))?;
//! let instance = b.build()?;
//!
//! // Run the paper's distributed auction and verify Theorem 1.
//! let outcome = SyncAuction::new(AuctionConfig::paper()).run(&instance)?;
//! let report = verify_optimality(&instance, &outcome.assignment, &outcome.duals, 1e-9);
//! assert!(report.is_optimal());
//! assert_eq!(outcome.assignment.welfare(&instance), instance.optimal_welfare());
//! # Ok::<(), p2p_types::P2pError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use p2p_core as core;
pub use p2p_metrics as metrics;
pub use p2p_net as net;
pub use p2p_netflow as netflow;
pub use p2p_runtime as runtime;
pub use p2p_scenario as scenario;
pub use p2p_sched as sched;
pub use p2p_sim as sim;
pub use p2p_streaming as streaming;
pub use p2p_topology as topology;
pub use p2p_types as types;
pub use p2p_workload as workload;

/// The most commonly used items, importable in one line.
pub mod prelude {
    pub use p2p_core::dist::{DistConfig, DistributedAuction};
    pub use p2p_core::{
        verify_optimality, Assignment, AuctionConfig, AuctionOutcome, CsrBuilder, CsrInstance,
        DualSolution, FlatAuction, FlatOutcome, InstanceDiff, InstancePatch, ShardCount,
        ShardedAuction, SyncAuction, WelfareInstance, WorkerSpawner,
    };
    pub use p2p_metrics::{ascii_plot, SlotMetrics, SlotRecorder, Summary, TimeSeries};
    pub use p2p_runtime::WorkerPool;
    pub use p2p_scenario::{
        builtin, parse_scenario, run_scenario, scheduler_by_name, scheduler_for,
        scheduler_for_runtime, scheduler_with_runtime, scheduler_with_shards, Scenario,
        ScenarioEvent, ScenarioReport, TimedEvent,
    };
    pub use p2p_sched::{
        AuctionScheduler, ChunkScheduler, ExactScheduler, FlatAuctionScheduler, GreedyScheduler,
        RandomScheduler, Schedule, ShardedAuctionScheduler, SimpleLocalityScheduler, SlotProblem,
    };
    pub use p2p_streaming::{SlotBuild, SlotProblemCache, System, SystemConfig, WorkloadTrace};
    pub use p2p_topology::{Topology, TopologyConfig};
    pub use p2p_types::{
        Bandwidth, ChunkId, ChunkRequest, Cost, IspId, P2pError, PeerId, RequestId, Result,
        SimDuration, SimTime, SlotIndex, Utility, Valuation, VideoId,
    };
    pub use p2p_workload::{
        DeadlineValuation, StreamingParams, TruncatedNormal, VideoCatalog, ZipfMandelbrot,
    };
}
