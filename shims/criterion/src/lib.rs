//! Offline stand-in for `criterion`.
//!
//! Provides the API surface the workspace's benches use (groups,
//! `bench_function`, `bench_with_input`, `iter`, `iter_batched`,
//! `BenchmarkId`, `BatchSize`) with a deliberately simple measurement
//! model: each benchmark runs a short warmup followed by a fixed number of
//! timed iterations and prints the mean wall-clock time per iteration.
//! There is no statistical analysis, HTML report, or baseline comparison —
//! the goal is that `cargo bench` produces believable relative numbers and
//! the bench targets stay compilable until real criterion can be vendored.
//!
//! Set `CRITERION_QUICK=1` to run every closure exactly once (used by CI to
//! smoke-run benches cheaply).

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::Instant;

/// How `iter_batched` amortizes setup; ignored by this shim.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// Fresh setup every iteration.
    PerIteration,
}

/// Identifies one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// A compound id: `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId { id: format!("{}/{}", name.into(), parameter) }
    }

    /// An id that is just the parameter.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId { id: parameter.to_string() }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

fn quick_mode() -> bool {
    std::env::var_os("CRITERION_QUICK").is_some_and(|v| v != "0")
}

/// The timing driver passed to benchmark closures.
pub struct Bencher {
    iters: u64,
    report: Option<(f64, u64)>,
}

impl Bencher {
    fn new(iters: u64) -> Self {
        Bencher { iters, report: None }
    }

    /// Times `routine` over this bencher's iteration budget.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // One untimed warmup pass.
        std::hint::black_box(routine());
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(routine());
        }
        let elapsed = start.elapsed().as_secs_f64();
        self.report = Some((elapsed, self.iters));
    }

    /// Times `routine` on inputs produced (untimed) by `setup`.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        std::hint::black_box(routine(setup()));
        let mut total = 0.0;
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            std::hint::black_box(routine(input));
            total += start.elapsed().as_secs_f64();
        }
        self.report = Some((total, self.iters));
    }
}

fn print_report(label: &str, bencher: &Bencher) {
    match bencher.report {
        Some((secs, iters)) if iters > 0 => {
            let per_iter_ns = secs / iters as f64 * 1e9;
            println!("bench {label:<50} {per_iter_ns:>14.0} ns/iter ({iters} iters)");
        }
        _ => println!("bench {label:<50} (no measurement)"),
    }
}

/// A named set of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    iters: u64,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the sample count (mapped directly to iterations here).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        if !quick_mode() {
            self.iters = (n as u64).max(1);
        }
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher::new(self.iters);
        f(&mut b);
        print_report(&format!("{}/{}", self.name, id.id), &b);
        self
    }

    /// Runs one benchmark with a borrowed input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher::new(self.iters);
        f(&mut b, input);
        print_report(&format!("{}/{}", self.name, id.id), &b);
        self
    }

    /// Ends the group (no-op beyond upstream API compatibility).
    pub fn finish(self) {}
}

/// The benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    fn default_iters() -> u64 {
        if quick_mode() {
            1
        } else {
            10
        }
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { name: name.into(), iters: Self::default_iters(), _criterion: self }
    }

    /// Runs a standalone benchmark.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher::new(Self::default_iters());
        f(&mut b);
        print_report(id, &b);
        self
    }
}

/// Re-export matching upstream's path; prefer `std::hint::black_box`.
pub use std::hint::black_box;

/// Bundles benchmark functions into a callable group.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Emits `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut g = c.benchmark_group("shim");
        g.sample_size(3);
        g.bench_function("square", |b| b.iter(|| std::hint::black_box(7u64 * 7)));
        g.bench_with_input(BenchmarkId::new("sum", 10), &10u64, |b, &n| {
            b.iter_batched(
                || (0..n).collect::<Vec<_>>(),
                |v| v.iter().sum::<u64>(),
                BatchSize::LargeInput,
            );
        });
        g.finish();
    }

    criterion_group!(benches, sample_bench);

    #[test]
    fn group_runs_all_targets() {
        benches();
    }

    #[test]
    fn ids_format_like_upstream() {
        assert_eq!(BenchmarkId::new("a", 5).id, "a/5");
        assert_eq!(BenchmarkId::from_parameter("10x2").id, "10x2");
    }
}
