//! Offline stand-in for `serde`.
//!
//! Provides the `Serialize`/`Deserialize` names the workspace derives on its
//! data types. No in-tree code performs serialization, so the traits carry no
//! methods and the derives (re-exported from the sibling `serde_derive` shim)
//! expand to nothing. Swapping in real serde later is a manifest-only change.

#![forbid(unsafe_code)]

pub use serde_derive::{Deserialize, Serialize};

/// Marker for serializable types (no-op shim).
pub trait Serialize {}

/// Marker for deserializable types (no-op shim).
pub trait Deserialize<'de>: Sized {}
