//! Offline stand-in for `proptest`.
//!
//! Implements the subset of proptest's API this workspace uses: the
//! [`Strategy`] trait with `prop_map`/`prop_flat_map`, range and tuple
//! strategies, [`Just`], `prop::collection::vec`, the [`prop_oneof!`]
//! weighted union, `any::<bool>()`, the [`proptest!`] macro and the
//! `prop_assert*`/`prop_assume!` macros.
//!
//! Differences from upstream, chosen deliberately for an offline CI:
//!
//! - **Deterministic**: each test's RNG is seeded from a hash of the test
//!   name, so every run explores the same cases. Reproducible by design;
//!   no failure-persistence files needed.
//! - **No shrinking**: a failing case panics with the generated inputs via
//!   the normal assertion message; there is no minimization pass.
//! - **Case-count bounding**: the `PROPTEST_CASES` environment variable
//!   caps the per-test case count below the suite's configured value, so CI
//!   can keep the whole pyramid fast (`PROPTEST_CASES=16 cargo test`).

#![forbid(unsafe_code)]

use rand::rngs::StdRng;
use rand::{Rng as _, SeedableRng};

/// Per-test configuration. Only `cases` is meaningful in this shim.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per property.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }

    /// The configured case count, capped by the `PROPTEST_CASES`
    /// environment variable when set (and valid).
    pub fn effective_cases(&self) -> u32 {
        match std::env::var("PROPTEST_CASES").ok().and_then(|v| v.parse::<u32>().ok()) {
            Some(cap) => self.cases.min(cap.max(1)),
            None => self.cases,
        }
    }
}

/// Derives the deterministic base RNG for a named test.
#[doc(hidden)]
pub fn rng_for(test_name: &str) -> StdRng {
    // FNV-1a over the test name: stable, dependency-free.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    StdRng::seed_from_u64(h)
}

/// A generator of random values of an associated type.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn new_value(&self, rng: &mut StdRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { source: self, f }
    }

    /// Generates a value, then generates from the strategy `f` returns.
    fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { source: self, f }
    }

    /// Discards generated values failing `predicate` (bounded retries).
    fn prop_filter<F: Fn(&Self::Value) -> bool>(
        self,
        whence: &'static str,
        predicate: F,
    ) -> Filter<Self, F>
    where
        Self: Sized,
    {
        Filter { source: self, whence, predicate }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn new_value(&self, rng: &mut StdRng) -> Self::Value {
        (**self).new_value(rng)
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    source: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn new_value(&self, rng: &mut StdRng) -> O {
        (self.f)(self.source.new_value(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    source: S,
    f: F,
}

impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
    type Value = T::Value;

    fn new_value(&self, rng: &mut StdRng) -> T::Value {
        (self.f)(self.source.new_value(rng)).new_value(rng)
    }
}

/// See [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    source: S,
    whence: &'static str,
    predicate: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;

    fn new_value(&self, rng: &mut StdRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.source.new_value(rng);
            if (self.predicate)(&v) {
                return v;
            }
        }
        panic!("prop_filter({}) rejected 1000 consecutive values", self.whence);
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn new_value(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn new_value(&self, rng: &mut StdRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.new_value(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);

impl<T> Strategy for Box<dyn Strategy<Value = T>> {
    type Value = T;

    fn new_value(&self, rng: &mut StdRng) -> T {
        (**self).new_value(rng)
    }
}

/// A weighted union over same-valued strategies. Built by [`prop_oneof!`].
pub struct Union<T> {
    arms: Vec<(u32, Box<dyn Strategy<Value = T>>)>,
    total: u32,
}

impl<T> Union<T> {
    /// A union drawing each arm with probability `weight / Σ weights`.
    ///
    /// # Panics
    ///
    /// Panics if `arms` is empty or any weight is zero.
    pub fn new(arms: Vec<(u32, Box<dyn Strategy<Value = T>>)>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        assert!(arms.iter().all(|(w, _)| *w > 0), "prop_oneof! weights must be positive");
        let total = arms.iter().map(|(w, _)| *w).sum();
        Union { arms, total }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn new_value(&self, rng: &mut StdRng) -> T {
        let mut pick = rng.gen_range(0..self.total);
        for (weight, arm) in &self.arms {
            if pick < *weight {
                return arm.new_value(rng);
            }
            pick -= weight;
        }
        unreachable!("pick is always below the summed weights")
    }
}

/// Draws from one of several same-valued strategies, uniformly
/// (`prop_oneof![a, b]`) or by weight (`prop_oneof![3 => a, 1 => b]`).
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![
            $((
                $weight as u32,
                std::boxed::Box::new($strat) as std::boxed::Box<dyn $crate::Strategy<Value = _>>,
            )),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::prop_oneof![$(1 => $strat),+]
    };
}

/// Types with a canonical strategy, for [`any`].
pub trait Arbitrary {
    /// The canonical strategy type.
    type Strategy: Strategy<Value = Self>;

    /// The canonical strategy.
    fn arbitrary() -> Self::Strategy;
}

/// The canonical strategy for `T` (e.g. `any::<bool>()`).
pub fn any<T: Arbitrary>() -> T::Strategy {
    T::arbitrary()
}

/// Strategy for a uniformly random `bool`.
#[derive(Debug, Clone, Copy)]
pub struct AnyBool;

impl Strategy for AnyBool {
    type Value = bool;

    fn new_value(&self, rng: &mut StdRng) -> bool {
        rng.gen_bool(0.5)
    }
}

impl Arbitrary for bool {
    type Strategy = AnyBool;

    fn arbitrary() -> AnyBool {
        AnyBool
    }
}

macro_rules! impl_arbitrary_via_range {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            type Strategy = std::ops::RangeInclusive<$t>;
            fn arbitrary() -> Self::Strategy {
                <$t>::MIN..=<$t>::MAX
            }
        }
    )*};
}

impl_arbitrary_via_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Namespaced strategies, mirroring `proptest::prop`.
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use super::super::{SizeRange, Strategy, VecStrategy};

        /// A strategy yielding `Vec`s of `element` with a length drawn from
        /// `size`.
        pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
            VecStrategy { element, size: size.into() }
        }
    }
}

/// An inclusive-exclusive length range for collection strategies.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    hi_inclusive: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi_inclusive: n }
    }
}

impl From<std::ops::Range<usize>> for SizeRange {
    fn from(r: std::ops::Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange { lo: r.start, hi_inclusive: r.end - 1 }
    }
}

impl From<std::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: std::ops::RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty size range");
        SizeRange { lo: *r.start(), hi_inclusive: *r.end() }
    }
}

/// See [`prop::collection::vec`].
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn new_value(&self, rng: &mut StdRng) -> Vec<S::Value> {
        let len = rng.gen_range(self.size.lo..=self.size.hi_inclusive);
        (0..len).map(|_| self.element.new_value(rng)).collect()
    }
}

/// Everything a proptest suite needs in scope.
pub mod prelude {
    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
        Arbitrary, Just, ProptestConfig, Strategy,
    };
}

/// Defines property tests. See the crate docs for shim semantics.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr)
      $(
        $(#[$meta:meta])*
        fn $name:ident ( $($pat:pat in $strat:expr),+ $(,)? ) $body:block
      )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::ProptestConfig = $cfg;
                let __cases = __config.effective_cases();
                let mut __rng = $crate::rng_for(concat!(module_path!(), "::", stringify!($name)));
                for __case in 0..__cases {
                    $( let $pat = $crate::Strategy::new_value(&($strat), &mut __rng); )+
                    $body
                }
            }
        )*
    };
}

/// Asserts a property within a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Asserts equality within a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Asserts inequality within a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// Skips the current case when `cond` does not hold. Must appear at the top
/// level of a [`proptest!`] body (it expands to `continue`).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            continue;
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            continue;
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_and_tuples_generate_in_bounds() {
        let mut rng = crate::rng_for("t1");
        let s = (1u32..5, 0.0f64..1.0, 3usize..=3);
        for _ in 0..200 {
            let (a, b, c) = s.new_value(&mut rng);
            assert!((1..5).contains(&a));
            assert!((0.0..1.0).contains(&b));
            assert_eq!(c, 3);
        }
    }

    #[test]
    fn vec_lengths_respect_size_range() {
        let mut rng = crate::rng_for("t2");
        let s = prop::collection::vec(0u8..=255, 2..5);
        for _ in 0..200 {
            let v = s.new_value(&mut rng);
            assert!((2..5).contains(&v.len()));
        }
    }

    #[test]
    fn map_and_flat_map_compose() {
        let mut rng = crate::rng_for("t3");
        let s = (1usize..4).prop_flat_map(|n| {
            (Just(n), prop::collection::vec(0u32..10, n..=n)).prop_map(|(n, v)| (n, v.len()))
        });
        for _ in 0..100 {
            let (n, len) = s.new_value(&mut rng);
            assert_eq!(n, len);
        }
    }

    #[test]
    fn deterministic_per_test_name() {
        let s = 0u64..u64::MAX;
        let a: Vec<u64> = {
            let mut rng = crate::rng_for("same");
            (0..8).map(|_| s.new_value(&mut rng)).collect()
        };
        let b: Vec<u64> = {
            let mut rng = crate::rng_for("same");
            (0..8).map(|_| s.new_value(&mut rng)).collect()
        };
        assert_eq!(a, b);
        let c: Vec<u64> = {
            let mut rng = crate::rng_for("different");
            (0..8).map(|_| s.new_value(&mut rng)).collect()
        };
        assert_ne!(a, c);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn the_macro_itself_works(x in 1u32..10, v in prop::collection::vec(0i64..5, 0..4)) {
            prop_assert!((1..10).contains(&x));
            prop_assert!(v.len() < 4);
            prop_assume!(x != 5);
            prop_assert_ne!(x, 5);
        }
    }

    #[test]
    fn oneof_draws_every_arm_and_respects_weights() {
        let mut rng = crate::rng_for("t4");
        let s = prop_oneof![9 => 0u32..1, 1 => (10u32..20).prop_map(|x| x)];
        let (mut low, mut high) = (0u32, 0u32);
        for _ in 0..2000 {
            let v: u32 = s.new_value(&mut rng);
            match v {
                0 => low += 1,
                10..=19 => high += 1,
                other => panic!("value {other} outside every arm"),
            }
        }
        assert!(low > high * 5, "9:1 weighting not respected: {low} vs {high}");
        assert!(high > 0, "light arm never drawn");
    }

    #[test]
    fn env_var_caps_cases() {
        // Not set in the test environment by default: configured count wins.
        let c = ProptestConfig::with_cases(7);
        assert!(c.effective_cases() <= 7);
    }
}
