//! Offline stand-in for `crossbeam`: the `channel` module, backed by
//! `std::sync::mpsc` with the receiver behind an `Arc<Mutex<..>>` so it is
//! `Clone` like crossbeam's. Receiving locks the mutex, which serializes
//! competing consumers — every consumer in this workspace is single-threaded
//! per receiver, so only the `Clone` bound matters, not MPMC throughput.

#![forbid(unsafe_code)]

/// Multi-producer channels with cloneable receivers.
pub mod channel {
    use std::sync::mpsc;
    use std::sync::{Arc, Mutex, PoisonError};
    use std::time::Duration;

    pub use std::sync::mpsc::{RecvError, RecvTimeoutError, SendError, TryRecvError};

    /// The sending half of an unbounded channel.
    pub struct Sender<T> {
        inner: mpsc::Sender<T>,
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender { inner: self.inner.clone() }
        }
    }

    impl<T> Sender<T> {
        /// Sends a message; fails only if all receivers are gone.
        pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
            self.inner.send(msg)
        }
    }

    /// The receiving half of an unbounded channel (cloneable).
    pub struct Receiver<T> {
        inner: Arc<Mutex<mpsc::Receiver<T>>>,
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            Receiver { inner: self.inner.clone() }
        }
    }

    impl<T> Receiver<T> {
        /// Blocks until a message arrives or all senders are gone.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.inner.lock().unwrap_or_else(PoisonError::into_inner).recv()
        }

        /// Blocks up to `timeout` for a message.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            self.inner.lock().unwrap_or_else(PoisonError::into_inner).recv_timeout(timeout)
        }

        /// Non-blocking receive.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            self.inner.lock().unwrap_or_else(PoisonError::into_inner).try_recv()
        }
    }

    /// Creates an unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (Sender { inner: tx }, Receiver { inner: Arc::new(Mutex::new(rx)) })
    }
}

#[cfg(test)]
mod tests {
    use super::channel::{unbounded, RecvTimeoutError};
    use std::time::Duration;

    #[test]
    fn send_and_receive() {
        let (tx, rx) = unbounded();
        tx.send(5).unwrap();
        assert_eq!(rx.recv().unwrap(), 5);
    }

    #[test]
    fn cloned_receiver_shares_the_queue() {
        let (tx, rx) = unbounded();
        let rx2 = rx.clone();
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        assert_eq!(rx.recv().unwrap(), 1);
        assert_eq!(rx2.recv().unwrap(), 2);
    }

    #[test]
    fn timeout_and_disconnect() {
        let (tx, rx) = unbounded::<i32>();
        assert_eq!(rx.recv_timeout(Duration::from_millis(10)), Err(RecvTimeoutError::Timeout));
        drop(tx);
        assert_eq!(rx.recv_timeout(Duration::from_millis(10)), Err(RecvTimeoutError::Disconnected));
    }

    #[test]
    fn disconnect_unblocks_recv() {
        let (tx, rx) = unbounded::<i32>();
        let h = std::thread::spawn(move || rx.recv());
        drop(tx);
        assert!(h.join().unwrap().is_err());
    }
}
