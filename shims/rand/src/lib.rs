//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this workspace ships
//! the subset of `rand` 0.8's API that the project actually uses: the
//! [`RngCore`]/[`Rng`]/[`SeedableRng`] traits, a deterministic [`rngs::StdRng`]
//! (xoshiro256++ seeded via SplitMix64 — stable across platforms and releases
//! of this workspace, which is what the experiments rely on), and
//! [`seq::SliceRandom`]. The value streams differ from upstream `rand`, but
//! every consumer in this repository only needs determinism for a fixed seed,
//! not upstream-identical streams.

#![forbid(unsafe_code)]

use std::fmt;

/// Error type for fallible RNG operations (never produced by this shim's
/// generators; exists so `try_fill_bytes` has the upstream signature).
#[derive(Debug)]
pub struct Error;

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("rng error")
    }
}

impl std::error::Error for Error {}

/// The core of a random number generator: uniform raw words.
pub trait RngCore {
    /// Returns the next random `u32`.
    fn next_u32(&mut self) -> u32;
    /// Returns the next random `u64`.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);
    /// Fills `dest` with random bytes, reporting failure (infallible here).
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
        self.fill_bytes(dest);
        Ok(())
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// Types that can be sampled uniformly "at standard" by [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u8 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 24) as u8
    }
}

impl Standard for u16 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 16) as u16
    }
}

impl Standard for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for usize {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl Standard for i32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() as i32
    }
}

impl Standard for i64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as i64
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits -> uniform on [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// A range (`a..b` or `a..=b`) that [`Rng::gen_range`] can sample from.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + uniform_u128(rng, span) as i128) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                (lo as i128 + uniform_u128(rng, span) as i128) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Uniform draw from `[0, span)` (`span > 0`) without modulo bias.
fn uniform_u128<R: RngCore + ?Sized>(rng: &mut R, span: u128) -> u128 {
    debug_assert!(span > 0);
    if span == 1 {
        return 0;
    }
    // Rejection sampling on the top zone keeps the draw exactly uniform.
    let zone = u128::from(u64::MAX) + 1 - (u128::from(u64::MAX) + 1) % span;
    loop {
        let x = u128::from(rng.next_u64());
        if x < zone {
            return x % span;
        }
    }
}

macro_rules! impl_float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let u = <$t as Standard>::sample_standard(rng);
                self.start + u * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                // u uniform on the *closed* interval [0, 1] so `hi` is
                // reachable, matching upstream's inclusive-range semantics.
                let u = (rng.next_u64() >> 11) as $t / (((1u64 << 53) - 1) as $t);
                lo + u * (hi - lo)
            }
        }
    )*};
}

impl_float_range!(f32, f64);

/// Convenience sampling methods, available on every [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value of type `T` from its standard distribution.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Draws a value uniformly from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p must be in [0, 1]");
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Generators that can be constructed from a seed.
pub trait SeedableRng: Sized {
    /// The raw seed type.
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Creates a generator from a raw byte seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Creates a generator from a 64-bit seed (SplitMix64-expanded).
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = SplitMix64 { state };
        for chunk in seed.as_mut().chunks_mut(8) {
            let bytes = sm.next().to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&bytes[..n]);
        }
        Self::from_seed(seed)
    }
}

struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Concrete generators.
pub mod rngs {
    use super::{Error, RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++.
    ///
    /// Stable stream per seed across platforms; not cryptographic.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let result =
                (self.s[0].wrapping_add(self.s[3])).rotate_left(23).wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }

        fn fill_bytes(&mut self, dest: &mut [u8]) {
            for chunk in dest.chunks_mut(8) {
                let bytes = self.next_u64().to_le_bytes();
                let n = chunk.len();
                chunk.copy_from_slice(&bytes[..n]);
            }
        }

        fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
            self.fill_bytes(dest);
            Ok(())
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, word) in s.iter_mut().enumerate() {
                let mut bytes = [0u8; 8];
                bytes.copy_from_slice(&seed[i * 8..(i + 1) * 8]);
                *word = u64::from_le_bytes(bytes);
            }
            // An all-zero state would be a fixed point; nudge it.
            if s.iter().all(|&w| w == 0) {
                s[0] = 0x9E37_79B9_7F4A_7C15;
            }
            StdRng { s }
        }
    }
}

/// Sequence-related helpers.
pub mod seq {
    use super::{Rng, RngCore};

    /// Random operations on slices.
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// Returns a uniformly chosen element, or `None` if empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    use super::RngCore;

    #[test]
    fn unit_floats() {
        let mut r = StdRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let x: f64 = r.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn ranges_are_inclusive_exclusive() {
        let mut r = StdRng::seed_from_u64(5);
        for _ in 0..10_000 {
            let x = r.gen_range(3u32..7);
            assert!((3..7).contains(&x));
            let y = r.gen_range(-2i64..=2);
            assert!((-2..=2).contains(&y));
            let z = r.gen_range(1.0f64..=4.0);
            assert!((1.0..=4.0).contains(&z));
        }
    }

    #[test]
    fn range_endpoints_are_reachable() {
        let mut r = StdRng::seed_from_u64(8);
        let mut seen = [false; 4];
        for _ in 0..1000 {
            seen[r.gen_range(0usize..4)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gen_bool_extremes() {
        let mut r = StdRng::seed_from_u64(9);
        assert!(!r.gen_bool(0.0));
        assert!(r.gen_bool(1.0));
    }

    #[test]
    fn shuffle_permutes() {
        let mut r = StdRng::seed_from_u64(11);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut r);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn choose_covers_all() {
        let mut r = StdRng::seed_from_u64(13);
        let v = [1, 2, 3];
        let mut seen = std::collections::HashSet::new();
        for _ in 0..200 {
            seen.insert(*v.choose(&mut r).unwrap());
        }
        assert_eq!(seen.len(), 3);
        let empty: [i32; 0] = [];
        assert!(empty.choose(&mut r).is_none());
    }

    #[test]
    fn fill_bytes_unaligned() {
        let mut r = StdRng::seed_from_u64(15);
        let mut buf = [0u8; 13];
        r.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
