//! Offline stand-in for `serde_derive`.
//!
//! The workspace derives `Serialize`/`Deserialize` on its data types for
//! downstream consumers, but nothing in-tree serializes anything yet, so
//! until real serde is vendorable these derives expand to nothing. The
//! `attributes(serde)` declaration keeps `#[serde(...)]` field attributes
//! accepted should any be introduced.

use proc_macro::TokenStream;

/// No-op `#[derive(Serialize)]`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `#[derive(Deserialize)]`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
