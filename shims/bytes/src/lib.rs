//! Offline stand-in for the `bytes` crate: just [`Bytes`], a cheaply
//! cloneable immutable byte buffer backed by an `Arc<[u8]>`.

#![forbid(unsafe_code)]

use std::ops::Deref;
use std::sync::Arc;

/// An immutable, reference-counted byte buffer. Cloning is O(1).
#[derive(Debug, Clone, Default, PartialEq, Eq, Hash)]
pub struct Bytes {
    data: Arc<[u8]>,
}

impl Bytes {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        Bytes::default()
    }

    /// Number of bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Returns `true` if the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// The bytes as a slice.
    pub fn as_slice(&self) -> &[u8] {
        &self.data
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes { data: v.into() }
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Self {
        Bytes { data: v.into() }
    }
}

impl From<&'static str> for Bytes {
    fn from(v: &'static str) -> Self {
        Bytes { data: v.as_bytes().into() }
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

#[cfg(test)]
mod tests {
    use super::Bytes;

    #[test]
    fn roundtrip_and_cheap_clone() {
        let b = Bytes::from(vec![1u8, 2, 3]);
        let c = b.clone();
        assert_eq!(b.len(), 3);
        assert_eq!(&*c, &[1, 2, 3]);
        assert!(!b.is_empty());
        assert!(Bytes::new().is_empty());
    }
}
