//! Quickstart: solve one slot of the welfare problem with the paper's
//! primal-dual auction and verify its optimality certificate.
//!
//! Run with: `cargo run --example quickstart`

use isp_p2p::prelude::*;

fn main() -> Result<()> {
    // --- Build a tiny slot instance by hand -----------------------------
    // Two providers: a same-ISP neighbor (cheap) and a remote one (costly),
    // and three requests with deadline-driven valuations.
    let mut b = WelfareInstance::builder();
    let local = b.add_provider(PeerId::new(100), 1); // B(u) = 1 chunk/slot
    let remote = b.add_provider(PeerId::new(101), 2);

    let chunk = |i| ChunkId::new(VideoId::new(0), i);
    let r0 = b.add_request(RequestId::new(PeerId::new(0), chunk(40)));
    let r1 = b.add_request(RequestId::new(PeerId::new(1), chunk(41)));
    let r2 = b.add_request(RequestId::new(PeerId::new(2), chunk(42)));

    // v = deadline valuation, w = network cost (higher across ISPs).
    b.add_edge(r0, local, Valuation::new(8.0), Cost::new(0.9))?;
    b.add_edge(r0, remote, Valuation::new(8.0), Cost::new(5.2))?;
    b.add_edge(r1, local, Valuation::new(3.1), Cost::new(1.1))?;
    b.add_edge(r1, remote, Valuation::new(3.1), Cost::new(4.8))?;
    b.add_edge(r2, remote, Valuation::new(2.2), Cost::new(6.0))?; // v < w!
    let instance = b.build()?;

    // --- Run the auction -------------------------------------------------
    let outcome = SyncAuction::new(AuctionConfig::paper()).run(&instance)?;
    println!("auction converged in {} rounds, {} bids", outcome.rounds, outcome.bids_submitted);

    for r in 0..instance.request_count() {
        let who = instance.request(r).id;
        match outcome.assignment.provider_of(&instance, r) {
            Some(u) => println!("  {who} downloads from {}", instance.provider(u).peer),
            None => println!("  {who} stays unserved (no profitable source)"),
        }
    }
    println!("bandwidth prices λ = {:?}", outcome.duals.lambda);

    // --- Verify Theorem 1 ------------------------------------------------
    let report = verify_optimality(&instance, &outcome.assignment, &outcome.duals, 1e-9);
    assert!(report.is_optimal(), "complementary slackness must certify the outcome");
    let exact = instance.optimal_welfare();
    println!(
        "social welfare: auction {} vs exact optimum {} (duality gap {:.2e})",
        outcome.assignment.welfare(&instance),
        exact,
        report.gap()
    );
    assert!((outcome.assignment.welfare(&instance).get() - exact.get()).abs() < 1e-9);

    // The negative-utility request r2 must stay unserved: downloading a
    // chunk worth 2.2 over a cost-6.0 link would destroy welfare.
    assert_eq!(outcome.assignment.provider_of(&instance, r2), None);
    println!("ok: the auction refuses welfare-destroying transfers");
    Ok(())
}
