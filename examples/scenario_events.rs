//! The scenario engine: a custom declarative scenario with mid-run events —
//! a flash crowd hits while one ISP's transit is repriced — swept over the
//! auction and the locality baseline.
//!
//! Run with: `cargo run --release --example scenario_events`

use isp_p2p::prelude::*;

fn main() -> Result<()> {
    // Scenarios are data: this spec could live in a .toml file and load
    // via `parse_scenario(&std::fs::read_to_string(path)?)` — or run from
    // the CLI with `cargo run -p p2p-bench --bin scenarios -- --file ...`.
    let spec = r#"
name = "crowd_meets_outage"
description = "a flash crowd lands while ISP 0's transit is repriced 30x"
profile = "small"
seed = 7
slots = 24
peers = 10
seeds_per_video = 1      # scarce seeds force cross-ISP traffic

[[event]]                # transit trouble starts
at_slot = 6
kind = "isp_outage"
isp = 0
factor = 30.0

[[event]]                # ... and then the crowd arrives
at_slot = 10
kind = "flash_crowd"
peers = 30
video = 0

[[event]]                # the link recovers
at_slot = 18
kind = "isp_recovery"
isp = 0
"#;
    let scenario = parse_scenario(spec)?;
    println!("{} — {}\n", scenario.name, scenario.description);

    let report = run_scenario(
        &scenario,
        vec![
            scheduler_by_name("auction", scenario.seed)?,
            scheduler_by_name("locality", scenario.seed)?,
        ],
    )?;
    print!("{}", report.summary_table());

    // The per-slot series behind the table are regular recorders, so any
    // metrics tooling applies.
    let series: Vec<TimeSeries> = report
        .runs
        .iter()
        .map(|r| r.recorder.welfare_series().renamed(&r.summary.scheduler))
        .collect();
    let refs: Vec<&TimeSeries> = series.iter().collect();
    println!("\nsocial welfare vs time (events at t = 30, 50, 90 s)");
    println!("{}", ascii_plot(&refs, 80, 12));
    Ok(())
}
