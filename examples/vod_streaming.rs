//! A miniature P2P VoD session: run the paper's streaming system for a few
//! minutes of simulated time under the auction scheduler and print the
//! per-slot metrics the paper reports.
//!
//! Run with: `cargo run --release --example vod_streaming`

use isp_p2p::prelude::*;

fn main() -> Result<()> {
    // Paper parameters scaled down to a 60-peer swarm for a fast example.
    let config = SystemConfig::paper().with_seed(7);
    let mut sys = System::new(config, Box::new(AuctionScheduler::paper()))?;
    sys.add_static_peers(60)?;

    println!("slot |  welfare | transfers | inter-ISP% | miss% | peers");
    println!("-----+----------+-----------+------------+-------+------");
    for slot in 0..15 {
        let m = sys.step_slot()?;
        println!(
            "{slot:>4} | {:>8.1} | {:>9} | {:>10.1} | {:>5.2} | {:>5}",
            m.welfare,
            m.transfers,
            m.inter_isp_fraction() * 100.0,
            m.miss_rate() * 100.0,
            m.online_peers,
        );
    }

    let rec = sys.recorder();
    println!("\nwelfare per slot (auction):");
    println!("{}", ascii_plot(&[&rec.welfare_series()], 70, 12));

    let stats = Summary::of(rec.miss_rate_series().values());
    println!(
        "miss rate: mean {:.3}% p95 {:.3}%",
        stats.mean * 100.0,
        stats.percentile(95.0) * 100.0
    );
    Ok(())
}
