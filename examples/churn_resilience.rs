//! Churn resilience (the paper's Sec. V-E): peers join as a Poisson process
//! and 60 % of them leave mid-video. Compares the auction and the locality
//! baseline under this dynamic workload — a miniature of Fig. 6.
//!
//! Run with: `cargo run --release --example churn_resilience`

use isp_p2p::prelude::*;

fn run(scheduler: Box<dyn ChunkScheduler>) -> Result<SlotRecorder> {
    let config = SystemConfig::paper().with_seed(23).with_departures(0.6);
    let mut sys = System::new(config, scheduler)?;
    sys.enable_poisson_churn()?;
    sys.run_slots(20)?;
    println!(
        "{:>16}: welfare {:>9.1}/slot, inter-ISP {:>5.1}%, miss {:>5.2}%, final pop {}",
        sys.scheduler_name(),
        sys.recorder().welfare_series().mean_y().unwrap_or(0.0),
        sys.recorder().inter_isp_series().mean_y().unwrap_or(0.0) * 100.0,
        sys.recorder().miss_rate_series().mean_y().unwrap_or(0.0) * 100.0,
        sys.watcher_count(),
    );
    Ok(sys.recorder().clone())
}

fn main() -> Result<()> {
    println!("dynamic network: Poisson joins at 1/s, 60% early departures, 20 slots\n");

    let auction = run(Box::new(AuctionScheduler::paper()))?;
    let locality = run(Box::new(SimpleLocalityScheduler::new()))?;

    println!("\npopulation over time (same workload for both runs):");
    let pop = auction.population_series();
    println!("{}", ascii_plot(&[&pop], 70, 10));

    println!("social welfare under churn:");
    let aw = auction.welfare_series().renamed("auction");
    let lw = locality.welfare_series().renamed("locality");
    println!("{}", ascii_plot(&[&aw, &lw], 70, 12));

    assert!(
        aw.mean_y().unwrap_or(0.0) >= lw.mean_y().unwrap_or(0.0),
        "auction welfare should dominate under churn (Fig. 6a)"
    );
    println!("ok: the auction's welfare advantage survives churn");
    Ok(())
}
