//! ISP-friendliness study: compare the auction against the paper's simple
//! locality baseline plus two extra baselines on welfare, inter-ISP
//! traffic and misses — a miniature of Figs. 3–5.
//!
//! Run with: `cargo run --release --example isp_traffic_study`

use isp_p2p::prelude::*;

fn run(scheduler: Box<dyn ChunkScheduler>, peers: usize) -> Result<SlotRecorder> {
    let config = SystemConfig::paper().with_seed(11);
    let mut sys = System::new(config, scheduler)?;
    sys.add_static_peers(peers)?;
    sys.run_slots(12)?;
    println!(
        "{:>16}: welfare {:>9.1}/slot, inter-ISP {:>5.1}%, miss {:>5.2}%",
        sys.scheduler_name(),
        sys.recorder().welfare_series().mean_y().unwrap_or(0.0),
        sys.recorder().inter_isp_series().mean_y().unwrap_or(0.0) * 100.0,
        sys.recorder().miss_rate_series().mean_y().unwrap_or(0.0) * 100.0,
    );
    Ok(sys.recorder().clone())
}

fn main() -> Result<()> {
    let peers = 150;
    println!("static network, {peers} peers, 12 slots (paper parameters)\n");

    let auction = run(Box::new(AuctionScheduler::paper()), peers)?;
    let locality = run(Box::new(SimpleLocalityScheduler::new()), peers)?;
    let random = run(Box::new(RandomScheduler::new(3)), peers)?;
    let greedy = run(Box::new(GreedyScheduler::new()), peers)?;

    println!("\ninter-ISP traffic share over time:");
    let a = auction.inter_isp_series().renamed("auction");
    let l = locality.inter_isp_series().renamed("locality");
    let r = random.inter_isp_series().renamed("random");
    let g = greedy.inter_isp_series().renamed("greedy");
    println!("{}", ascii_plot(&[&a, &l, &r, &g], 78, 14));

    // The paper's headline: the auction is the most ISP-friendly scheduler.
    assert!(
        a.mean_y().unwrap_or(1.0) <= l.mean_y().unwrap_or(0.0) + 1e-9,
        "auction must not exceed the locality baseline's inter-ISP share"
    );
    println!("ok: auction <= locality on inter-ISP traffic (the paper's Fig. 4 ordering)");
    Ok(())
}
