//! Process-per-peer emulation: run the same slot problem through all three
//! executions of the auction — synchronous rounds, the discrete-event
//! simulator with latencies, and real OS threads racing through a
//! latency-enforcing router — and confirm they all land on the same
//! socially optimal welfare (Theorem 1 under real concurrency).
//!
//! Run with: `cargo run --release --example threaded_emulation`

use isp_p2p::core::dist::{DistConfig, DistributedAuction, LatencyFn};
use isp_p2p::prelude::*;
use isp_p2p::runtime::{ThreadedAuction, ThreadedConfig};
use std::time::Duration;

fn main() -> Result<()> {
    // A contended instance: 40 requests over 6 providers.
    let mut b = WelfareInstance::builder();
    let providers: Vec<_> =
        (0..6).map(|i| b.add_provider(PeerId::new(1000 + i), 3 + (i % 3))).collect();
    for d in 0..40u32 {
        let r = b.add_request(RequestId::new(PeerId::new(d), ChunkId::new(VideoId::new(0), d)));
        for (k, &u) in providers.iter().enumerate() {
            if (d as usize + k).is_multiple_of(2) {
                // Low-discrepancy irrational spreads keep every price
                // difference generic: the ε = 0 auction is exactly optimal
                // on tie-free instances (Theorem 1's generic position).
                // Rational lattices (e.g. hashes mod N) would create exact
                // ties and trigger the paper's wait-rule deadlocks.
                let frac = |x: f64| x - x.floor();
                let v = 0.8 + 7.2 * frac(f64::from(d) * 0.618_033_988_749_894_9);
                // The d·k interaction keeps cost *differences* generic
                // across requests: the paper's bid w_û − w_u* + λ_û cancels
                // v, so costs linear in (d, k) would make distinct requests
                // bid identical amounts and deadlock on the tie rule.
                let w = 0.2
                    + 3.0
                        * frac(
                            (f64::from(d) * 3.0 + k as f64 * 7.0) * std::f64::consts::SQRT_2
                                + f64::from(d) * k as f64 * 1.732_050_807_568_877,
                        )
                    + 0.9 * k as f64;
                b.add_edge(r, u, Valuation::new(v), Cost::new(w))?;
            }
        }
    }
    let instance = b.build()?;
    let exact = instance.optimal_welfare();
    println!("exact optimal welfare: {exact}");

    // 1. Synchronous rounds (the scheduler's fast path).
    let sync = SyncAuction::new(AuctionConfig::paper()).run(&instance)?;
    println!(
        "sync engine:        welfare {} in {} rounds",
        sync.assignment.welfare(&instance),
        sync.rounds
    );

    // 2. Message-level discrete-event execution with heterogeneous latency.
    let latency: LatencyFn = Box::new(|from, to| {
        SimDuration::from_millis(10 + u64::from((from.get() * 31 + to.get() * 17) % 200))
    });
    let des = DistributedAuction::new(DistConfig::paper(), latency).run(&instance)?;
    println!(
        "discrete-event:     welfare {} after {} messages, converged at {}",
        des.assignment.welfare(&instance),
        des.messages,
        des.converged_at
    );

    // 3. Real threads: one auctioneer thread per provider, one bidder
    //    thread per downstream peer, a router enforcing wall-clock latency.
    let threaded = ThreadedAuction::new(ThreadedConfig::paper()).run(&instance, |from, to| {
        Duration::from_micros(100 + u64::from((from.get() * 13 + to.get() * 7) % 900))
    })?;
    println!(
        "threaded emulation: welfare {} after {} routed messages, {} payload bytes, converged in {:?}",
        threaded.assignment.welfare(&instance),
        threaded.messages,
        threaded.bytes_delivered,
        threaded.convergence
    );

    for (name, welfare) in [
        ("sync", sync.assignment.welfare(&instance)),
        ("des", des.assignment.welfare(&instance)),
        ("threaded", threaded.assignment.welfare(&instance)),
    ] {
        assert!(
            (welfare.get() - exact.get()).abs() < 1e-6,
            "{name} engine missed the optimum: {welfare} vs {exact}"
        );
    }
    println!("ok: all three executions reach the exact social optimum");
    Ok(())
}
